package laser_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/workload"
	"repro/laser"
)

// twoPhaseFSImage builds a custom two-thread image whose single function
// falsely shares two different cache lines in two successive phases:
// phase 1 hammers per-thread slots of line A, phase 2 per-thread slots
// of line B, with a flag barrier keeping the phases overlapped across
// threads. Every access touches bytes disjoint from every other (each
// thread stores its own slot and probes a separate offset), so the cache
// line model classifies both lines as pure false sharing. Repairing
// phase 1 leaves phase 2's contention to flare up afterwards — exactly
// the situation that needs a second detect→repair epoch, with phase 2's
// post-rewrite PCs remapped to the original program for the trigger to
// identify them.
func twoPhaseFSImage(iters int64) *workload.Image {
	b := isa.NewBuilder().At("twophase.c", 10)
	b.Func("work")
	b.Li(20, 0)
	b.Label("p1").Line(12)
	b.Load(2, 0, 8, 8)  // probe [lineA slot + 8]: disjoint from all stores
	b.Store(0, 0, 2, 8) // store own slot [lineA slot + 0]
	b.AddI(20, 20, 1)
	b.BranchI(isa.Lt, 20, iters, "p1")
	// Flag barrier: publish my arrival, spin on the peer's flag. Each
	// flag lives on its own line and is written by exactly one thread.
	b.Line(18)
	b.Li(2, 1)
	b.Store(10, 0, 2, 8)
	b.Label("spin").Line(19)
	b.Load(3, 11, 0, 8)
	b.BranchI(isa.Eq, 3, 0, "spin")
	b.Li(20, 0)
	b.Label("p2").Line(22)
	b.Load(2, 1, 8, 8)
	b.Store(1, 0, 2, 8)
	b.AddI(20, 20, 1)
	b.BranchI(isa.Lt, 20, iters, "p2")
	b.Halt()
	prog := b.Build()

	lineA, lineB := mem.HeapBase+0x1000, mem.HeapBase+0x2000
	flag0, flag1 := mem.HeapBase+0x3000, mem.HeapBase+0x3040
	specs := []machine.ThreadSpec{
		{Entry: 0, Regs: map[isa.Reg]int64{
			0: int64(lineA), 1: int64(lineB), 10: int64(flag0), 11: int64(flag1)}},
		{Entry: 0, Regs: map[isa.Reg]int64{
			0: int64(lineA + 16), 1: int64(lineB + 16), 10: int64(flag1), 11: int64(flag0)}},
	}
	return &workload.Image{Prog: prog, Specs: specs, Threads: 2}
}

// TestSessionMultiEpochRepair is the acceptance test for the multi-epoch
// redesign: one session runs two detect→repair epochs, and the records
// sampled after each rewrite are remapped to original-program PCs — the
// second repair can only find phase 2's instructions if remapping works,
// and the final report must attribute both phases to their original
// source lines.
func TestSessionMultiEpochRepair(t *testing.T) {
	img := twoPhaseFSImage(150_000)
	var applied []laser.RepairApplied
	var epochEnds []laser.EpochEnd
	s, err := laser.Attach(img,
		laser.WithMaxEpochs(4),
		laser.WithObserver(func(e laser.Event) {
			switch ev := e.(type) {
			case laser.RepairApplied:
				applied = append(applied, ev)
			case laser.EpochEnd:
				epochEnds = append(epochEnds, ev)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if len(applied) < 2 {
		t.Fatalf("got %d repairs, want >= 2 (multi-epoch re-arm failed)", len(applied))
	}
	if applied[0].Epoch() == applied[1].Epoch() {
		t.Errorf("both repairs in epoch %d, want distinct epochs", applied[0].Epoch())
	}
	if len(res.Epochs) != len(applied)+1 {
		t.Errorf("Result.Epochs has %d entries, want %d (one per repair plus the final epoch)",
			len(res.Epochs), len(applied)+1)
	}
	for i, ep := range res.Epochs {
		if ep.Epoch != i {
			t.Errorf("epoch %d reported index %d", i, ep.Epoch)
		}
		wantRepaired := i < len(applied)
		if ep.Repaired != wantRepaired {
			t.Errorf("epoch %d Repaired = %v, want %v", i, ep.Repaired, wantRepaired)
		}
	}
	if len(epochEnds) != len(res.Epochs) {
		t.Errorf("%d EpochEnd events, want %d", len(epochEnds), len(res.Epochs))
	}

	// Post-repair attribution: the cumulative report covers both phases,
	// keyed to the original source lines even though phase 2's samples
	// arrived with rewritten-program PCs.
	byLine := map[int]bool{}
	for _, l := range res.Report.Lines {
		if l.Loc.File == "twophase.c" && l.FS > 0 {
			byLine[l.Loc.Line] = true
		}
	}
	if !byLine[12] || !byLine[22] {
		t.Errorf("false sharing not attributed to both original lines 12 and 22:\n%s",
			res.Report.Render())
	}

	// The second epoch's windowed report sees only phase 2 (post-repair
	// samples, original PCs): line 22 must appear, line 12 must not
	// dominate it.
	second := res.Epochs[1].Report
	found22 := false
	for _, l := range second.Lines {
		if l.Loc.File == "twophase.c" && l.Loc.Line == 22 {
			found22 = true
		}
	}
	if !found22 {
		t.Errorf("epoch 1 report missing original line 22:\n%s", second.Render())
	}

	// Both repairs must actually help: the repaired run beats native.
	nat, err := laser.RunNative(twoPhaseFSImage(150_000), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles >= nat.Cycles {
		t.Errorf("two-epoch repair (%d cycles) not faster than native (%d)",
			res.Stats.Cycles, nat.Cycles)
	}
}

// TestSessionEventDeterminism: identical image, options and seed produce
// an identical event sequence and report, step for step.
func TestSessionEventDeterminism(t *testing.T) {
	run := func() (events []string, report string) {
		w, _ := workload.Get("linear_regression")
		img := w.Build(workload.Options{Scale: 0.6, HeapBias: laser.AttachBias})
		s, err := laser.Attach(img,
			laser.WithSeed(7),
			laser.WithObserver(func(e laser.Event) {
				events = append(events, fmt.Sprint(e))
			}))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, err := s.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return events, res.Report.Render()
	}
	ev1, rep1 := run()
	ev2, rep2 := run()
	if len(ev1) == 0 {
		t.Fatal("no events observed")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs:\n  %s\n  %s", i, ev1[i], ev2[i])
		}
	}
	if rep1 != rep2 {
		t.Errorf("reports differ:\n%s\nvs\n%s", rep1, rep2)
	}
}

// TestSessionEventsChannel: the channel delivers the same sequence the
// observers see and closes on Close.
func TestSessionEventsChannel(t *testing.T) {
	w, _ := workload.Get("histogram'")
	img := w.Build(workload.Options{Scale: 0.4, HeapBias: laser.AttachBias})
	var observed []string
	s, err := laser.Attach(img, laser.WithObserver(func(e laser.Event) {
		observed = append(observed, fmt.Sprint(e))
	}))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []string
	drained := make(chan struct{})
	events := s.Events()
	go func() {
		defer close(drained)
		for e := range events {
			streamed = append(streamed, fmt.Sprint(e))
		}
	}()
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	<-drained
	if len(streamed) == 0 || len(streamed) != len(observed) {
		t.Fatalf("channel delivered %d events, observer saw %d", len(streamed), len(observed))
	}
	for i := range streamed {
		if streamed[i] != observed[i] {
			t.Fatalf("event %d differs between channel and observer", i)
		}
	}
}

// TestLegacyWrapperMatchesPinnedSession: RunImage is a session pinned to
// one-shot semantics; an explicitly pinned Attach must reproduce it
// exactly.
func TestLegacyWrapperMatchesPinnedSession(t *testing.T) {
	build := func() *workload.Image {
		w, _ := workload.Get("linear_regression")
		return w.Build(workload.Options{Scale: 0.6, HeapBias: laser.AttachBias})
	}
	legacy, err := laser.RunImage(build(), laser.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := laser.Attach(build(),
		laser.WithConfig(laser.DefaultConfig()),
		laser.WithMaxEpochs(1),
		laser.WithPostRepairMonitoring(false))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ported, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Stats.Cycles != ported.Stats.Cycles {
		t.Errorf("cycles differ: legacy %d, session %d", legacy.Stats.Cycles, ported.Stats.Cycles)
	}
	if legacy.RepairApplied != ported.RepairApplied {
		t.Errorf("RepairApplied differs")
	}
	if legacy.DetectorCycle != ported.DetectorCycle {
		t.Errorf("DetectorCycle differs: %d vs %d", legacy.DetectorCycle, ported.DetectorCycle)
	}
	if a, b := legacy.Report.Render(), ported.Report.Render(); a != b {
		t.Errorf("reports differ:\n%s\nvs\n%s", a, b)
	}
}

// TestOptionValidation: option constructors reject invalid values with
// descriptive errors instead of coercing them.
func TestOptionValidation(t *testing.T) {
	w, _ := workload.Get("histogram'")
	img := w.Build(workload.Options{Scale: 0.1})
	for _, tc := range []struct {
		name string
		opt  laser.Option
		want string
	}{
		{"cores", laser.WithCores(-1), "core count"},
		{"zero cores", laser.WithCores(0), "core count"},
		{"sav", laser.WithSAV(0), "sample-after"},
		{"poll", laser.WithPollInterval(0), "interval"},
		{"epochs", laser.WithMaxEpochs(0), "epoch"},
		{"threshold", laser.WithRateThreshold(-3), "threshold"},
		{"repair threshold", laser.WithRepairRateThreshold(0), "threshold"},
		{"observer", laser.WithObserver(nil), "observer"},
	} {
		if _, err := laser.Attach(img, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestConfigValidate: the legacy shim keeps the historical zero-value
// coercions but rejects genuinely invalid values.
func TestConfigValidate(t *testing.T) {
	cfg := laser.DefaultConfig()
	cfg.Cores = 0
	cfg.PollInterval = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero coercions rejected: %v", err)
	}
	if cfg.Cores != 4 || cfg.PollInterval != 2_000_000 || cfg.MaxEpochs != 1 {
		t.Errorf("normalization wrong: %+v", cfg)
	}

	bad := laser.DefaultConfig()
	bad.Cores = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative Cores accepted")
	}
	bad = laser.DefaultConfig()
	bad.PEBS.SAV = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SAV accepted")
	}
	bad = laser.DefaultConfig()
	bad.MaxEpochs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative MaxEpochs accepted")
	}

	// The legacy entry point goes through the shim too.
	w, _ := workload.Get("histogram'")
	if _, err := laser.Run(w, workload.Options{Scale: 0.1}, bad); err == nil {
		t.Error("RunImage accepted an invalid Config")
	}
}

// TestSessionSnapshotMidRun: reports are available at any moment, and
// offline re-thresholding applies mid-run.
func TestSessionSnapshotMidRun(t *testing.T) {
	w, _ := workload.Get("linear_regression")
	img := w.Build(workload.Options{Scale: 0.6, HeapBias: laser.AttachBias})
	s, err := laser.Attach(img, laser.WithRepair(false))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.RunFor(8_000_000); err != nil {
		t.Fatal(err)
	}
	all := s.SnapshotAt(0)
	def := s.Snapshot()
	if len(all.Lines) == 0 {
		t.Fatal("mid-run snapshot empty at threshold 0")
	}
	if len(def.Lines) > len(all.Lines) {
		t.Errorf("default threshold reports more lines (%d) than threshold 0 (%d)",
			len(def.Lines), len(all.Lines))
	}
	if ep := s.EpochSnapshot(); len(ep.Lines) != len(all.Lines) {
		// Epoch 0's window is the whole run so far; at threshold equal to
		// the default the line sets can differ, but the epoch snapshot
		// must at least see the same observation window.
		if ep.Seconds <= 0 {
			t.Errorf("epoch snapshot window %.3f, want > 0", ep.Seconds)
		}
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionContextCancel: Run honours context cancellation and returns
// the pipeline for post-mortem inspection.
func TestSessionContextCancel(t *testing.T) {
	w, _ := workload.Get("histogram'")
	img := w.Build(workload.Options{Scale: 0.4, HeapBias: laser.AttachBias})
	s, err := laser.Attach(img)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Pipeline == nil {
		t.Error("cancelled Run returned no partial result")
	}
	if _, err := s.Result(); !errors.Is(err, laser.ErrRunning) {
		t.Errorf("Result before completion: err = %v, want ErrRunning", err)
	}
}

// TestSessionClose: Close is idempotent, stops stepping, and closes the
// event channel.
func TestSessionClose(t *testing.T) {
	w, _ := workload.Get("histogram'")
	img := w.Build(workload.Options{Scale: 0.2, HeapBias: laser.AttachBias})
	s, err := laser.Attach(img)
	if err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); !errors.Is(err, laser.ErrClosed) {
		t.Errorf("Step after Close: err = %v, want ErrClosed", err)
	}
	if _, ok := <-events; ok {
		t.Error("event channel still open after Close")
	}

	// Events first requested after Close must yield a closed channel,
	// not one that blocks forever.
	s2, err := laser.Attach(w.Build(workload.Options{Scale: 0.2, HeapBias: laser.AttachBias}))
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if _, ok := <-s2.Events(); ok {
		t.Error("Events() after Close returned an open channel")
	}
}
