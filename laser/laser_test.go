package laser

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/repair"
	"repro/internal/workload"
)

// scale keeps facade tests quick while leaving enough run time for the
// detector to act.
const scale = 0.6

func TestRunDetectsAndRepairsLinearRegression(t *testing.T) {
	w, _ := workload.Get("linear_regression")
	res, err := Run(w, workload.Options{Scale: scale}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.RepairApplied {
		t.Errorf("online repair not applied (repairErr=%v)", res.RepairErr)
	}
	found := false
	for _, l := range res.Report.Lines {
		if l.Loc.File == "lreg.c" {
			found = true
		}
	}
	if !found {
		t.Errorf("lreg.c contention not reported:\n%s", res.Report.Render())
	}
	// Repair must beat the unmonitored native run despite monitoring.
	img := w.Build(workload.Options{Scale: scale})
	nat, err := RunNative(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles >= nat.Cycles {
		t.Errorf("LASER run with repair (%d cycles) not faster than native (%d)",
			res.Stats.Cycles, nat.Cycles)
	}
}

func TestRunQuietWorkloadLowOverhead(t *testing.T) {
	w, _ := workload.Get("blackscholes")
	res, err := Run(w, workload.Options{Scale: scale}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := w.Build(workload.Options{Scale: scale})
	nat, err := RunNative(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Stats.Cycles) / float64(nat.Cycles)
	if ratio > 1.05 {
		t.Errorf("quiet workload overhead %.3fx, want ~1.0x", ratio)
	}
	if len(res.Report.Lines) != 0 {
		t.Errorf("quiet workload reported contention: %+v", res.Report.Lines)
	}
	if res.RepairApplied {
		t.Error("repair applied on a quiet workload")
	}
}

func TestRunTrueSharingNoRepair(t *testing.T) {
	w, _ := workload.Get("kmeans")
	res, err := Run(w, workload.Options{Scale: 0.3}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairApplied {
		t.Error("LASERREPAIR must not attempt to repair true sharing")
	}
	if len(res.Report.Lines) == 0 {
		t.Fatal("kmeans contention not reported")
	}
}

func TestRunLuNcbRepairRefused(t *testing.T) {
	w, _ := workload.Get("lu_ncb")
	res, err := Run(w, workload.Options{Scale: 2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairApplied {
		t.Error("lu_ncb repair should be refused (§7.4.2)")
	}
	if res.RepairErr == nil {
		t.Skip("repair never triggered at this scale")
	}
	if !errors.Is(res.RepairErr, repair.ErrComplexRegion) &&
		!errors.Is(res.RepairErr, repair.ErrNotProfitable) {
		t.Errorf("refusal reason = %v", res.RepairErr)
	}
}

func TestRunByName(t *testing.T) {
	if _, err := RunByName("nonesuch", workload.Options{}, DefaultConfig()); !errors.Is(err, ErrNoWorkload) {
		t.Errorf("err = %v, want ErrNoWorkload", err)
	}
	res, err := RunByName("string_match", workload.Options{Scale: 0.1}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions == 0 {
		t.Error("no instructions executed")
	}
}

func TestResultRenderable(t *testing.T) {
	res, err := RunByName("histogram'", workload.Options{Scale: scale}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := res.Report.Render()
	if !strings.Contains(text, "contention report") {
		t.Errorf("render: %q", text)
	}
	if res.PEBSStats.Records == 0 || res.DriverStats.Records == 0 {
		t.Error("monitoring stats empty")
	}
}

func TestRepairDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableRepair = false
	res, err := RunByName("histogram'", workload.Options{Scale: scale}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairApplied {
		t.Error("repair ran while disabled")
	}
}
