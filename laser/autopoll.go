package laser

import "fmt"

// AutoPollInterval returns the detector poll cadence for a run whose
// workload is scaled to the given fraction of its full-length input.
// The paper's cadence (DefaultConfig's 2M cycles) assumes full-length
// runs; a scaled-down workload can finish inside a single fixed-cadence
// poll, in which case the session completes without one §4.4
// repair-trigger check regardless of how much false-sharing evidence
// accumulated — the historical "repair did not trigger at this scale"
// defect. Scaling the cadence with the workload keeps the number of
// trigger checks per run constant across scales; at scale >= 1 it is
// exactly the base cadence, so full-fidelity runs are unchanged.
func AutoPollInterval(base uint64, scale float64) uint64 {
	if scale >= 1 {
		return base
	}
	iv := uint64(float64(base) * scale)
	if iv < 1 {
		iv = 1
	}
	return iv
}

// WithAutoPollInterval derives the session's poll cadence from the
// workload scale instead of taking a fixed cycle count: the configured
// base interval (DefaultConfig's, or WithConfig's) is scaled by
// AutoPollInterval when the session attaches. Raw Attach users running
// scaled-down images get the same scale-aware trigger cadence the
// evaluation harness uses, without reimplementing it. The option
// conflicts with an explicit WithPollInterval — asking for both is
// reported as an error at Attach rather than silently picking one.
func WithAutoPollInterval(scale float64) Option {
	return func(s *settings) error {
		if scale <= 0 {
			return fmt.Errorf("WithAutoPollInterval: scale must be positive, got %g", scale)
		}
		s.autoPollScale = scale
		return nil
	}
}
