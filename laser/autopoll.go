package laser

import "fmt"

// AutoPollInterval returns the detector poll cadence for a run whose
// workload is scaled to the given fraction of its full-length input.
// The paper's cadence (DefaultConfig's 2M cycles) assumes full-length
// runs; a scaled-down workload can finish inside a single fixed-cadence
// poll, in which case the session completes without one §4.4
// repair-trigger check regardless of how much false-sharing evidence
// accumulated — the historical "repair did not trigger at this scale"
// defect. Scaling the cadence with the workload keeps the number of
// trigger checks per run constant across scales; at scale >= 1 it is
// exactly the base cadence, so full-fidelity runs are unchanged.
func AutoPollInterval(base uint64, scale float64) uint64 {
	if scale >= 1 {
		return base
	}
	iv := uint64(float64(base) * scale)
	if iv < 1 {
		iv = 1
	}
	return iv
}

// Speculative-repair trial budgets derive from the poll cadence: a
// trial should observe the workload for a few trigger periods, no more.
// trialBudgetPolls is that multiple; the clamps keep scaled sessions
// honest at both ends. A session whose cadence was scaled far down
// (AutoPollInterval at a small workload scale) would otherwise fork
// trials too short to outlive a scheduler quantum, let alone settle a
// measured verdict — the floor is two DefaultQuantum context-switch
// periods. A session polling slower than the paper's cadence would
// otherwise burn tens of millions of cycles per candidate re-measuring
// what monitoring already knows — the cap is eight full-cadence polls.
const (
	trialBudgetPolls = 4
	minTrialBudget   = 400_000    // 2 × machine.DefaultQuantum
	maxTrialBudget   = 16_000_000 // 8 × DefaultConfig().PollInterval
)

// AutoTrialBudget returns the default speculative-repair trial budget
// for a session whose base poll cadence and workload scale are given:
// trialBudgetPolls trigger periods of the AutoPollInterval-derived
// cadence, clamped to [minTrialBudget, maxTrialBudget]. At the paper's
// full-length setup (base 2M, scale 1) this is exactly the historical
// 4× poll interval, so full-fidelity runs are unchanged; scaled-down
// runs stop starving their trials and slow-cadence runs stop wasting
// cycles on them.
//
// A session that already resolved its cadence through AutoPollInterval
// may pass that resolved interval with scale 1: AutoPollInterval is
// idempotent in that composition, so the derived budget is identical.
func AutoTrialBudget(base uint64, scale float64) uint64 {
	b := trialBudgetPolls * AutoPollInterval(base, scale)
	if b < minTrialBudget {
		return minTrialBudget
	}
	if b > maxTrialBudget {
		return maxTrialBudget
	}
	return b
}

// WithAutoPollInterval derives the session's poll cadence from the
// workload scale instead of taking a fixed cycle count: the configured
// base interval (DefaultConfig's, or WithConfig's) is scaled by
// AutoPollInterval when the session attaches. Raw Attach users running
// scaled-down images get the same scale-aware trigger cadence the
// evaluation harness uses, without reimplementing it. The option
// conflicts with an explicit WithPollInterval — asking for both is
// reported as an error at Attach rather than silently picking one.
func WithAutoPollInterval(scale float64) Option {
	return func(s *settings) error {
		if scale <= 0 {
			return fmt.Errorf("WithAutoPollInterval: scale must be positive, got %g", scale)
		}
		s.autoPollScale = scale
		return nil
	}
}
