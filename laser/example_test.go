package laser_test

import (
	"fmt"

	"repro/internal/workload"
	"repro/laser"
)

// ExampleAttach monitors the paper's headline workload with a session:
// attach to the built image, wait for completion, inspect the result.
func ExampleAttach() {
	w, _ := workload.Get("linear_regression")
	img := w.Build(workload.Options{Scale: 0.6, HeapBias: laser.AttachBias})

	s, err := laser.Attach(img, laser.WithSAV(19), laser.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	res, err := s.Wait()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("repaired:", res.RepairApplied)
	fmt.Println("epochs:", len(res.Epochs))
	fmt.Println("first epoch ended in repair:", res.Epochs[0].Repaired)
	// Output:
	// repaired: true
	// epochs: 2
	// first epoch ended in repair: true
}

// ExampleAttach_options shows option validation: invalid values are
// rejected at attach time instead of being silently coerced.
func ExampleAttach_options() {
	w, _ := workload.Get("histogram'")
	img := w.Build(workload.Options{Scale: 0.1})

	_, err := laser.Attach(img, laser.WithCores(-2))
	fmt.Println(err)

	_, err = laser.Attach(img, laser.WithSAV(0))
	fmt.Println(err)
	// Output:
	// laser: WithCores: core count must be positive, got -2
	// laser: WithSAV: sample-after value must be positive, got 0
}

// ExampleSession_Events streams typed events while the monitor works.
func ExampleSession_Events() {
	w, _ := workload.Get("histogram'")
	img := w.Build(workload.Options{Scale: 0.5, HeapBias: laser.AttachBias})

	s, err := laser.Attach(img, laser.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	events := s.Events()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var batches, repairs int
		for e := range events {
			switch e.(type) {
			case laser.SampleBatch:
				batches++
			case laser.RepairApplied:
				repairs++
			}
		}
		fmt.Println("saw sample batches:", batches > 0)
		fmt.Println("repairs applied:", repairs)
	}()
	if _, err := s.Wait(); err != nil {
		fmt.Println(err)
		return
	}
	s.Close()
	<-done
	// Output:
	// saw sample batches: true
	// repairs applied: 1
}
