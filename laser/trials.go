package laser

// Speculative repair: when the §4.4 trigger first fires, instead of
// installing the default SSB rewrite outright, the session forks itself
// from the trigger cut — one fork per repair candidate, plus the
// explicit no-op baseline — runs each fork for a bounded cycle budget,
// and applies the candidate whose *measured* cycles won. The forks are
// rebuilt from one whole-session snapshot, each from its own decoded
// copy, so no mutable structure is shared between the parent and any
// trial (or between trials); the parent's own state is untouched until
// the winner is installed at exactly the cut the trials measured.
//
// Determinism: every fork is an independent deterministic simulation
// from an identical snapshot, results are collected by candidate index
// and emitted in canonical candidate order after every fork finished,
// and the selector is a pure function of (seed, results) — so the same
// seed yields the same winner, events and rendered tables byte for
// byte, regardless of how the trial goroutines interleave.

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/mem"
	"repro/internal/repair"
)

// applyMeasured is the speculative-repair first install: race the
// candidate slate from this cut, record the trial outcome, and install
// the measured winner. A "decline" winner returns the measured-decline
// error (the caller records it as RepairErr and emits RepairDeclined).
func (s *Session) applyMeasured(pcs []mem.Addr) error {
	trials, err := s.runTrials(pcs)
	if err != nil {
		// The trial harness itself failed (snapshot encode or fork
		// construction) — fall back to the direct rewrite rather than
		// losing the repair.
		return s.ctl.Apply(pcs)
	}
	winner := repair.SelectWinner(s.cfg.PEBS.Seed, trials)
	s.trials = trials
	s.trialWinner = winner
	for _, t := range trials {
		s.emit(RepairTrialResult{common: s.at(), Candidate: t.Candidate,
			Cycles: t.Cycles, Instructions: t.Instructions, HITMs: t.HITMs,
			Completed: t.Completed, Winner: t.Candidate == winner, Err: t.Err})
	}
	if winner == repair.DeclineName {
		return fmt.Errorf("laser: repair declined by measured trials: %s", trialSummary(trials))
	}
	cand, err := repair.CandidateByName(winner)
	if err != nil {
		return err
	}
	return s.ctl.ApplyCandidate(cand, pcs)
}

// runTrials forks one bounded trial per candidate from the current cut
// and returns the measured results in canonical candidate order.
func (s *Session) runTrials(pcs []mem.Addr) ([]repair.TrialResult, error) {
	budget := s.cfg.TrialBudget
	if budget == 0 {
		// Resolved here rather than in Validate so the configuration
		// fingerprint is independent of the poll cadence it derives
		// from. The session's PollInterval already carries the workload
		// scale (AutoPollInterval applied at attach), so scale 1 here
		// composes to the same budget as deriving from the base cadence.
		budget = AutoTrialBudget(s.cfg.PollInterval, 1)
	}
	blob, err := s.CaptureState().Encode()
	if err != nil {
		return nil, err
	}
	st := s.m.Stats()
	baseCycles, baseInstr := st.Cycles, st.Instructions
	baseHITM := st.HITMLoads + st.HITMStores

	cands := repair.Candidates()
	names := make([]string, len(cands))
	for i, c := range cands {
		names[i] = c.Name()
	}
	s.emit(RepairTrialStarted{common: s.at(), Candidates: names, Budget: budget})

	// Build the forks sequentially — each from its own decoded snapshot
	// copy — then run them concurrently; each is an independent machine.
	results := make([]repair.TrialResult, len(cands))
	forks := make([]*Session, len(cands))
	for i, cand := range cands {
		results[i].Candidate = cand.Name()
		snap, err := DecodeSessionState(blob)
		if err != nil {
			return nil, err
		}
		f, err := s.fork(snap)
		if err != nil {
			return nil, err
		}
		if cand.Name() != repair.DeclineName {
			if aerr := f.ctl.ApplyCandidate(cand, pcs); aerr != nil {
				// The candidate refused the region; it is out of the
				// race, measured by nothing.
				results[i].Err = aerr.Error()
				f.Close()
				continue
			}
			f.repairApplied = true
			f.refreshRemap()
		}
		forks[i] = f
	}
	var wg sync.WaitGroup
	for i := range forks {
		if forks[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runTrial(forks[i], results[i].Candidate, budget, baseCycles, baseInstr, baseHITM)
		}(i)
	}
	wg.Wait()
	return results, nil
}

// fork builds a trial session from a snapshot, reusing the parent's
// image and resolved configuration verbatim (so the engine kind always
// matches). The fork has no observers and an inert repair trigger.
func (s *Session) fork(st *SessionState) (*Session, error) {
	set := settings{cfg: s.cfg, monitorAfterRepair: s.monitorAfterRepair}
	f, err := newSession(s.img, set)
	if err != nil {
		return nil, err
	}
	f.trial = true
	if err := f.restoreFrom(st); err != nil {
		return nil, err
	}
	return f, nil
}

// runTrial drives one fork until the workload completes or the cycle
// budget is exhausted and returns the measured deltas from the cut.
func runTrial(f *Session, name string, budget, baseCycles, baseInstr, baseHITM uint64) repair.TrialResult {
	defer f.Close()
	res := repair.TrialResult{Candidate: name}
	deadline := baseCycles + budget
	for {
		done, err := f.Step()
		if err != nil {
			res.Err = err.Error()
			break
		}
		if done {
			res.Completed = true
			break
		}
		if f.m.Stats().Cycles >= deadline {
			break
		}
	}
	st := f.m.Stats()
	res.Cycles = st.Cycles - baseCycles
	res.Instructions = st.Instructions - baseInstr
	res.HITMs = st.HITMLoads + st.HITMStores - baseHITM
	return res
}

// trialSummary renders the measured trials compactly for the
// measured-decline error, in canonical candidate order.
func trialSummary(trials []repair.TrialResult) string {
	parts := make([]string, 0, len(trials))
	for _, t := range trials {
		switch {
		case t.Err != "":
			parts = append(parts, fmt.Sprintf("%s refused", t.Candidate))
		case t.Completed:
			parts = append(parts, fmt.Sprintf("%s %d cycles (completed)", t.Candidate, t.Cycles))
		default:
			parts = append(parts, fmt.Sprintf("%s %d cycles", t.Candidate, t.Cycles))
		}
	}
	return strings.Join(parts, ", ")
}
