package laser

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/workload"
)

// quietImage builds a contention-free four-thread image: private loops
// with no HITMs, so steady-state Steps drain no records. This is the
// workload shape the allocation contract is specified against — with
// HITM records in flight, the PEBS buffers and the detector's aggregates
// legitimately grow.
func quietImage(iters int64) *workload.Image {
	b := isa.NewBuilder().At("quiet.c", 1)
	b.Func("worker")
	b.Li(1, 0)
	b.Label("loop")
	b.AluI(isa.And, 4, 1, 255)
	b.AluI(isa.Shl, 4, 4, 3)
	b.Add(4, 4, 2)
	b.Load(5, 4, 0, 8)
	b.AddI(5, 5, 1)
	b.Store(4, 0, 5, 8)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, iters, "loop")
	b.Halt()
	img := &workload.Image{Prog: b.Build(), Threads: 4}
	img.Specs = make([]machine.ThreadSpec, 4)
	for i := range img.Specs {
		img.Specs[i] = machine.ThreadSpec{Regs: map[isa.Reg]int64{
			2: int64(mem.HeapBase + 0x1000 + mem.Addr(i)*0x1000),
		}}
	}
	return img
}

func quietSession(t testing.TB, iters int64) *Session {
	t.Helper()
	s, err := Attach(quietImage(iters),
		WithRepair(false),
		WithPollInterval(100_000))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionStepZeroAllocs asserts the streaming hot path's allocation
// contract: once warm, a Step with no observers attached (and no records
// to drain) performs zero allocations, and so do the Into-style snapshot
// calls.
func TestSessionStepZeroAllocs(t *testing.T) {
	s := quietSession(t, 1<<40)
	defer s.Close()
	// Warm up: first-touch pages, call stacks, PEBS/driver paths.
	for i := 0; i < 10; i++ {
		if done, err := s.Step(); err != nil || done {
			t.Fatalf("warmup ended early: done=%v err=%v", done, err)
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Session.Step allocates %.1f objects/op, want 0", avg)
	}
	var rep, erep = s.Snapshot(), s.EpochSnapshot()
	if avg := testing.AllocsPerRun(50, func() {
		s.SnapshotInto(rep)
		s.EpochSnapshotInto(erep)
	}); avg != 0 {
		t.Errorf("SnapshotInto allocates %.1f objects/op, want 0", avg)
	}
}

// BenchmarkSessionStep measures the per-Step cost of the streaming API on
// a quiet workload; run with -benchmem — the contract is 0 allocs/op.
func BenchmarkSessionStep(b *testing.B) {
	s := quietSession(b, 1<<40)
	defer s.Close()
	for i := 0; i < 10; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotInto measures the buffer-reusing snapshot path.
func BenchmarkSnapshotInto(b *testing.B) {
	w, _ := workload.Get("histogram'")
	img := w.Build(workload.Options{Scale: 0.3, HeapBias: AttachBias})
	s, err := Attach(img, WithRepair(false))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.RunFor(20_000_000); err != nil {
		b.Fatal(err)
	}
	rep := s.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SnapshotInto(rep)
	}
}
