package laser

import "testing"

func TestConfigFingerprint(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal configs fingerprint differently")
	}
	b.PEBS.Seed = 99
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("PEBS seed change not reflected in fingerprint")
	}
	c := DefaultConfig()
	c.PollInterval = 600_000
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("poll-interval change not reflected in fingerprint")
	}
	// Intra-run parallelism is byte-identity-preserving and must be
	// excluded: a cache entry computed serially serves parallel runs.
	d := DefaultConfig()
	d.IntraRunParallelism = 4
	if a.Fingerprint() != d.Fingerprint() {
		t.Error("intra-run parallelism leaked into the fingerprint")
	}
}
