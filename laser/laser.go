// Package laser is the public face of the LASER reproduction: it wires
// the simulated Haswell machine, the PEBS HITM sampling hardware, the
// kernel driver, the LASERDETECT pipeline and the LASERREPAIR rewriter
// into the three-process architecture of the paper's Figure 8, and runs a
// workload under it.
//
// Typical use:
//
//	w, _ := workload.Get("linear_regression")
//	res, err := laser.Run(w, workload.Options{}, laser.DefaultConfig())
//	fmt.Print(res.Report.Render())
package laser

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pebs"
	"repro/internal/repair"
	"repro/internal/workload"
)

// Config assembles the component configurations.
type Config struct {
	Cores        int
	PEBS         pebs.Config
	Driver       driver.Config
	Detector     core.Config
	Repair       repair.Config
	EnableRepair bool
	// PollInterval is the simulated-cycle slice between detector polls
	// of the driver device (and repair-trigger checks).
	PollInterval uint64
	// MaxCycles caps the run (0 = effectively unbounded).
	MaxCycles uint64
}

// DefaultConfig matches the paper's evaluation setup: SAV 19, 1K HITMs/s
// report threshold, online repair enabled.
func DefaultConfig() Config {
	return Config{
		Cores:        4,
		PEBS:         pebs.DefaultConfig(),
		Driver:       driver.DefaultConfig(),
		Detector:     core.DefaultConfig(),
		Repair:       repair.DefaultConfig(),
		EnableRepair: true,
		PollInterval: 2_000_000, // ~0.6 ms at 3.4 GHz
	}
}

// Result is everything a LASER run produces.
type Result struct {
	// Stats are the machine statistics of the monitored application.
	Stats *machine.Stats
	// Report is the contention report at exit (pre-repair aggregates).
	Report *core.Report
	// Pipeline exposes the detector for offline re-thresholding (Fig. 9).
	Pipeline *core.Pipeline
	// RepairApplied says whether LASERREPAIR rewrote the program.
	RepairApplied bool
	// RepairErr records why a triggered repair was refused (nil if repair
	// never triggered or succeeded).
	RepairErr error
	// Seconds is the simulated duration.
	Seconds float64
	// DriverStats and PEBSStats expose the monitoring cost components
	// (Figure 12).
	DriverStats   driver.Stats
	PEBSStats     pebs.Stats
	DetectorCycle uint64
}

// AttachBias is the heap perturbation of running a process under the
// LASER harness: the detector's fork shifts the target's brk by one
// allocator chunk header — the §7.2 lu_ncb layout coincidence.
const AttachBias = mem.ChunkHeader

// RunNative executes a workload image without any monitoring.
func RunNative(img *workload.Image, cores int) (*machine.Stats, error) {
	m := machine.New(img.Prog, machine.Config{Cores: cores}, img.Specs)
	img.Init(m)
	return m.Run()
}

// Run builds the workload (with the attach-time heap bias), starts the
// full LASER stack around it, and executes to completion with periodic
// detector polling and, when triggered and profitable, online repair.
func Run(w *workload.Workload, opts workload.Options, cfg Config) (*Result, error) {
	opts.HeapBias = AttachBias
	img := w.Build(opts)
	return RunImage(img, cfg)
}

// RunImage runs LASER around an already-built image.
func RunImage(img *workload.Image, cfg Config) (*Result, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 2_000_000
	}
	vm := img.VMMap()
	drv := driver.New(cfg.Driver)
	pmu := pebs.New(cfg.PEBS, cfg.Cores, img.Prog, vm, drv)
	pipe, err := core.NewPipeline(cfg.Detector, vm.Render(), img.Prog)
	if err != nil {
		return nil, fmt.Errorf("laser: %w", err)
	}

	var ctl *repair.Controller
	mcfg := machine.Config{
		Cores:     cfg.Cores,
		Probe:     pmu,
		MaxCycles: cfg.MaxCycles,
		OnAliasMiss: func(tid int, pc mem.Addr) {
			if ctl != nil {
				ctl.OnAliasMiss(tid, pc)
			}
		},
	}
	m := machine.New(img.Prog, mcfg, img.Specs)
	img.Init(m)
	ctl = repair.NewController(cfg.Repair, m)

	res := &Result{Pipeline: pipe}
	var next uint64 = cfg.PollInterval
	for {
		done, err := m.RunFor(next)
		if err != nil {
			return res, err
		}
		if !res.RepairApplied {
			// Pre-repair records attribute correctly to the original
			// program; afterwards the rewritten PCs would mislead the
			// pipeline, so monitoring results are frozen (the paper's
			// detector likewise reports the pre-repair contention).
			pipe.Feed(drv.Poll())
		} else {
			drv.Poll() // drain
		}
		if done {
			break
		}
		st := m.Stats()
		if cfg.EnableRepair && !res.RepairApplied && res.RepairErr == nil {
			if pcs, ok := pipe.RepairCandidates(st.Seconds()); ok {
				if err := ctl.Apply(pcs); err != nil {
					res.RepairErr = err
				} else {
					res.RepairApplied = true
				}
			}
		}
		next += cfg.PollInterval
	}
	pmu.Drain()
	if !res.RepairApplied {
		pipe.Feed(drv.Poll())
	}

	res.Stats = m.Stats()
	res.Seconds = res.Stats.Seconds()
	res.Report = pipe.Report(res.Seconds)
	res.DriverStats = drv.Stats()
	res.PEBSStats = pmu.Stats()
	res.DetectorCycle = pipe.DetectorCycles()
	return res, nil
}

// ErrNoWorkload is returned by RunByName for unknown workloads.
var ErrNoWorkload = errors.New("laser: unknown workload")

// RunByName is a convenience wrapper for the command-line tools.
func RunByName(name string, opts workload.Options, cfg Config) (*Result, error) {
	w, ok := workload.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoWorkload, name)
	}
	return Run(w, opts, cfg)
}
