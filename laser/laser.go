// Package laser is the public face of the LASER reproduction: it wires
// the simulated Haswell machine, the PEBS HITM sampling hardware, the
// kernel driver, the LASERDETECT pipeline and the LASERREPAIR rewriter
// into the three-process architecture of the paper's Figure 8.
//
// The primary API is the Session: a long-lived, observable monitor
// around one workload image.
//
//	w, _ := workload.Get("linear_regression")
//	img := w.Build(workload.Options{HeapBias: laser.AttachBias})
//	s, _ := laser.Attach(img, laser.WithSAV(19))
//	defer s.Close()
//	res, _ := s.Wait()
//	fmt.Print(res.Report.Render())
//
// Sessions are configured with functional options (WithCores,
// WithRepair, WithPollInterval, WithSAV, WithMaxEpochs, ...), stream
// typed events (Events, WithObserver), produce reports at any moment
// mid-run (Snapshot, SnapshotAt), and run multiple detect→repair
// epochs: after a rewrite, post-repair HITM records are remapped to
// original-program PCs so detection re-arms instead of freezing.
//
// Run, RunImage and RunByName are convenience wrappers retained from the
// one-shot API: each attaches a session pinned to the paper's single
// detect→repair pass (one epoch, monitoring frozen at repair) and waits
// for it, so their results — including every rendered evaluation table —
// are identical to the historical behaviour.
package laser

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pebs"
	"repro/internal/repair"
	"repro/internal/workload"
)

// Config assembles the component configurations. New code should prefer
// Attach with options, which validates instead of silently coercing;
// Config remains the bulk form (see WithConfig) and the shape the legacy
// wrappers take.
type Config struct {
	Cores        int
	PEBS         pebs.Config
	Driver       driver.Config
	Detector     core.Config
	Repair       repair.Config
	EnableRepair bool
	// PollInterval is the simulated-cycle slice between detector polls
	// of the driver device (and repair-trigger checks).
	PollInterval uint64
	// MaxCycles caps the run (0 = effectively unbounded).
	MaxCycles uint64
	// IntraRunParallelism > 1 executes the simulated machine's
	// thread-private instruction stretches on that many host workers (see
	// WithIntraRunParallelism). Results are byte-identical to the serial
	// engine; 0 or 1 selects it.
	IntraRunParallelism int
	// SegmentJIT compiles provably-private instruction segments into
	// straight-line native closures inside the simulated machine (see
	// WithSegmentJIT). Results are byte-identical to the interpreter;
	// only wall-clock time changes. Ignored under execution models with
	// their own memory semantics (Sheriff).
	SegmentJIT bool
	// MaxEpochs bounds how many detect→repair epochs a session may run.
	// 0 means "entry point's default": 1 (the paper's one-shot pass) for
	// the Run wrappers, DefaultMaxEpochs for Attach.
	MaxEpochs int
	// SpeculativeRepair races competing repair candidates when the §4.4
	// trigger first fires: the session forks itself from the trigger
	// cut, runs one bounded trial per candidate (plus a no-op
	// baseline), and applies the measured winner — or declines with
	// measured numbers. Off, repair installs the default SSB rewrite
	// directly (the historical behaviour, zero added cost).
	SpeculativeRepair bool
	// TrialBudget is the simulated-cycle budget each speculative trial
	// fork may run. 0 derives 4 poll intervals at trial time, so the
	// budget follows the session's resolved cadence.
	TrialBudget uint64
}

// DefaultConfig matches the paper's evaluation setup: SAV 19, 1K HITMs/s
// report threshold, online repair enabled.
func DefaultConfig() Config {
	return Config{
		Cores:        4,
		PEBS:         pebs.DefaultConfig(),
		Driver:       driver.DefaultConfig(),
		Detector:     core.DefaultConfig(),
		Repair:       repair.DefaultConfig(),
		EnableRepair: true,
		PollInterval: 2_000_000, // ~0.6 ms at 3.4 GHz
	}
}

// Validate normalizes and checks a configuration. Zero values the
// one-shot API historically coerced keep their defaults — Cores 0→4,
// PollInterval 0→2M cycles, PEBS.BufferCap 0→64, MaxEpochs 0→1 —
// while genuinely invalid values (negative counts, non-positive
// sample-after values, negative thresholds) are rejected with
// descriptive errors instead of being run with.
func (c *Config) Validate() error {
	switch {
	case c.Cores < 0:
		return fmt.Errorf("laser: Cores must be positive, got %d", c.Cores)
	case c.IntraRunParallelism < 0:
		return fmt.Errorf("laser: IntraRunParallelism must be non-negative, got %d", c.IntraRunParallelism)
	case c.MaxEpochs < 0:
		return fmt.Errorf("laser: MaxEpochs must be positive, got %d", c.MaxEpochs)
	case c.PEBS.SAV <= 0:
		return fmt.Errorf("laser: PEBS.SAV (sample-after value) must be positive, got %d", c.PEBS.SAV)
	case c.PEBS.BufferCap < 0:
		return fmt.Errorf("laser: PEBS.BufferCap must be positive, got %d", c.PEBS.BufferCap)
	case c.Detector.SAV <= 0:
		return fmt.Errorf("laser: Detector.SAV must be positive, got %d", c.Detector.SAV)
	case c.Detector.RateThreshold < 0:
		return fmt.Errorf("laser: Detector.RateThreshold must be non-negative, got %g", c.Detector.RateThreshold)
	case c.Detector.RepairRateThreshold < 0:
		return fmt.Errorf("laser: Detector.RepairRateThreshold must be non-negative, got %g", c.Detector.RepairRateThreshold)
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.PollInterval == 0 {
		c.PollInterval = 2_000_000
	}
	if c.PEBS.BufferCap == 0 {
		c.PEBS.BufferCap = 64
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 1
	}
	return nil
}

// Result is everything a LASER run produces.
type Result struct {
	// Stats are the machine statistics of the monitored application.
	Stats *machine.Stats
	// Report is the contention report at exit. Under the one-shot
	// wrappers these are the pre-repair aggregates; a multi-epoch
	// session keeps the report live across repairs, attributed to
	// original-program PCs.
	Report *core.Report
	// Pipeline exposes the detector for offline re-thresholding (Fig. 9).
	Pipeline *core.Pipeline
	// Epochs are the per-epoch windowed reports and monitoring costs, in
	// order; the last entry is the epoch the workload ended in.
	Epochs []EpochReport
	// RepairApplied says whether LASERREPAIR rewrote the program.
	RepairApplied bool
	// RepairErr records why a triggered repair was refused (nil if repair
	// never triggered or succeeded).
	RepairErr error
	// RepairWinner names the candidate the speculative trials selected
	// ("decline" for a measured decline); empty when trials never ran.
	RepairWinner string
	// RepairTrials carries the measured outcome of every speculative
	// trial, in canonical candidate order; nil when trials never ran.
	RepairTrials []repair.TrialResult
	// Seconds is the simulated duration.
	Seconds float64
	// DriverStats and PEBSStats expose the monitoring cost components
	// (Figure 12).
	DriverStats   driver.Stats
	PEBSStats     pebs.Stats
	DetectorCycle uint64
}

// AttachBias is the heap perturbation of running a process under the
// LASER harness: the detector's fork shifts the target's brk by one
// allocator chunk header — the §7.2 lu_ncb layout coincidence.
const AttachBias = mem.ChunkHeader

// RunNative executes a workload image without any monitoring.
func RunNative(img *workload.Image, cores int) (*machine.Stats, error) {
	return RunNativeParallel(img, cores, 1)
}

// RunNativeParallel is RunNative with intra-run parallelism: workers > 1
// executes the single simulated machine on that many host threads, with
// results byte-identical to RunNative. It is how the experiment harness
// keeps the hardware busy when a figure has fewer runnable simulations
// than host cores.
func RunNativeParallel(img *workload.Image, cores, workers int) (*machine.Stats, error) {
	return RunNativeParallelJIT(img, cores, workers, false)
}

// RunNativeParallelJIT is RunNativeParallel with the segment compiler
// optionally enabled (see WithSegmentJIT): provably-private instruction
// stretches execute as compiled straight-line closures, byte-identical
// to the interpreter at any worker count.
func RunNativeParallelJIT(img *workload.Image, cores, workers int, segjit bool) (*machine.Stats, error) {
	m := machine.New(img.Prog, machine.Config{
		Cores:       cores,
		Parallelism: workers,
		SegmentJIT:  segjit,
		PrivateData: img.PrivateRanges(),
	}, img.Specs)
	img.Init(m)
	return m.Run()
}

// Run builds the workload (with the attach-time heap bias), starts the
// full LASER stack around it, and executes to completion with periodic
// detector polling and, when triggered and profitable, online repair.
// It is a convenience wrapper over a one-epoch Session.
func Run(w *workload.Workload, opts workload.Options, cfg Config) (*Result, error) {
	opts.HeapBias = AttachBias
	img := w.Build(opts)
	return RunImage(img, cfg)
}

// RunImage runs LASER around an already-built image: it attaches a
// session pinned to the paper's one-shot semantics — a single
// detect→repair epoch, with monitoring results frozen once a repair is
// installed (the paper's detector likewise reports the pre-repair
// contention) — and waits for it.
func RunImage(img *workload.Image, cfg Config) (*Result, error) {
	st := settings{cfg: cfg}
	if err := st.cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newSession(img, st)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Wait()
}

// ErrNoWorkload is returned by RunByName for unknown workloads.
var ErrNoWorkload = errors.New("laser: unknown workload")

// RunByName is a convenience wrapper for the command-line tools.
func RunByName(name string, opts workload.Options, cfg Config) (*Result, error) {
	w, ok := workload.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoWorkload, name)
	}
	return Run(w, opts, cfg)
}
