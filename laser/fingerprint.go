package laser

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint returns a short, stable content hash over every
// configuration field that can influence simulated results: core count,
// PEBS sampling model, driver and detector parameters, repair settings,
// poll cadence and cycle/epoch budgets. Two configurations with equal
// fingerprints produce byte-identical runs of the same workload image.
//
// Execution-engine knobs that are proven not to affect simulated
// results — IntraRunParallelism, whose output is byte-identical at any
// worker count, and SegmentJIT, whose compiled blocks retire the exact
// interpreter schedule — are excluded, so a cache entry computed under
// one engine configuration is valid under every other.
//
// The experiment harness uses the fingerprint as the configuration
// component of its persistent run-cache keys.
func (c Config) Fingerprint() string {
	c.IntraRunParallelism = 0
	c.SegmentJIT = false
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", c)))
	return hex.EncodeToString(sum[:12])
}
