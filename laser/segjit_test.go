package laser

// Interpreter-vs-compiled equivalence for the segment compiler
// (machine.Config.SegmentJIT): every stock workload, at worker counts
// {1, 2, 4}, must produce exactly the run the interpreter produces —
// same statistics, same coherence counters, same HITM ground truth,
// byte-identical rendered reports, identical event streams. The
// compiler is a pure execution-speed policy; any divergence here is a
// soundness bug, not a tuning matter.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

// TestSegJITEquivalenceAllWorkloads sweeps every stock workload natively:
// one interpreted reference run, then compiled runs under the serial
// scheduler and the intra-run parallel engine at 2 and 4 workers. The
// final assertion demands the compiler actually engaged somewhere in the
// sweep, so a silently disabled JIT cannot fake a green sweep.
func TestSegJITEquivalenceAllWorkloads(t *testing.T) {
	scale := 0.2
	if testing.Short() {
		scale = 0.08
	}
	var compiled uint64
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(par int, jit bool) (*machine.Stats, []uint64) {
				img := w.Build(workload.Options{Scale: scale})
				m := machine.New(img.Prog, machine.Config{
					Cores:             4,
					Parallelism:       par,
					DispatchThreshold: 64,
					SegmentJIT:        jit,
					PrivateData:       img.PrivateRanges(),
					ValidateSharing:   true,
				}, img.Specs)
				img.Init(m)
				st, err := m.Run()
				if err != nil {
					t.Fatalf("par %d jit %v: %v", par, jit, err)
				}
				if par > 1 && !m.IntraRunParallel() {
					t.Fatalf("par %d: parallel engine not engaged", par)
				}
				return st, m.CoherenceCounts()
			}
			ref, refCoh := run(1, false)
			if ref.CompiledInstrs != 0 {
				t.Fatalf("interpreted run reported %d compiled instructions", ref.CompiledInstrs)
			}
			for _, par := range []int{1, 2, 4} {
				st, coh := run(par, true)
				compiled += st.CompiledInstrs
				if st.CompiledInstrs > st.Instructions {
					t.Fatalf("par %d: compiled %d of %d instructions", par, st.CompiledInstrs, st.Instructions)
				}
				if st.Cycles != ref.Cycles ||
					st.Instructions != ref.Instructions ||
					st.MemAccesses != ref.MemAccesses ||
					st.HITMLoads != ref.HITMLoads ||
					st.HITMStores != ref.HITMStores ||
					st.Flushes != ref.Flushes {
					t.Fatalf("par %d: stats diverged\ninterpreted: %+v\ncompiled:    %+v", par, ref, st)
				}
				if !reflect.DeepEqual(st.HITMByPC, ref.HITMByPC) {
					t.Fatalf("par %d: HITMByPC diverged", par)
				}
				if !reflect.DeepEqual(st.CoreCycles, ref.CoreCycles) {
					t.Fatalf("par %d: per-core cycles diverged", par)
				}
				if !reflect.DeepEqual(coh, refCoh) {
					t.Fatalf("par %d: coherence counts diverged\ninterpreted: %v\ncompiled:    %v", par, refCoh, coh)
				}
			}
		})
	}
	if compiled == 0 {
		t.Fatal("segment compiler never engaged across the sweep")
	}
}

// TestSegJITSessionEquivalence runs the full LASER stack — PEBS
// sampling, driver, detector, online repair — with the segment compiler
// off and on, and demands byte-identical rendered reports, identical
// typed event streams, and the same statistics and repair outcome.
// Repair exercises the hot-swap invalidation path end to end: the
// rewritten program must never execute a closure compiled for the old
// one, or the post-repair HITM profile (and thus the report) diverges.
func TestSegJITSessionEquivalence(t *testing.T) {
	scale := 0.4
	if testing.Short() {
		scale = 0.2
	}
	for _, name := range []string{"histogram'", "swaptions", "linear_regression"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(jit bool, par int) (*Result, string, []string) {
				w, ok := workload.Get(name)
				if !ok {
					t.Fatalf("unknown workload %q", name)
				}
				img := w.Build(workload.Options{Scale: scale, HeapBias: AttachBias})
				var events []string
				s, err := Attach(img,
					WithMaxEpochs(1),
					WithPostRepairMonitoring(false),
					WithIntraRunParallelism(par),
					WithSegmentJIT(jit),
					WithObserver(func(e Event) { events = append(events, fmt.Sprintf("%v", e)) }))
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				res, err := s.Wait()
				if err != nil {
					t.Fatal(err)
				}
				return res, res.Report.Render(), events
			}
			ref, refRep, refEvents := run(false, 1)
			for _, par := range []int{1, 2, 4} {
				res, rep, events := run(true, par)
				if rep != refRep {
					t.Fatalf("par %d: rendered reports differ:\ninterpreted:\n%s\ncompiled:\n%s", par, refRep, rep)
				}
				if !reflect.DeepEqual(events, refEvents) {
					t.Fatalf("par %d: event streams diverged:\ninterpreted: %v\ncompiled:    %v", par, refEvents, events)
				}
				if res.Stats.Cycles != ref.Stats.Cycles ||
					res.Stats.Instructions != ref.Stats.Instructions ||
					res.RepairApplied != ref.RepairApplied ||
					res.Seconds != ref.Seconds {
					t.Fatalf("par %d: results diverged: interpreted %+v vs compiled %+v", par, ref.Stats, res.Stats)
				}
				if res.DriverStats != ref.DriverStats || res.PEBSStats != ref.PEBSStats {
					t.Fatalf("par %d: monitoring stats diverged", par)
				}
				if !reflect.DeepEqual(res.Stats.HITMByPC, ref.Stats.HITMByPC) {
					t.Fatalf("par %d: HITMByPC diverged", par)
				}
			}
		})
	}
}
