package laser

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/mem"
)

// Event is one observation from a running Session: a batch of HITM
// records arriving, a detection report, repair activity, or an epoch
// boundary. Events are emitted synchronously, in deterministic order for
// a given image and configuration, to every observer registered with
// WithObserver and to the channel returned by Events.
type Event interface {
	// When returns the simulated machine cycle at which the event was
	// observed by the monitor.
	When() uint64
	// Epoch returns the detection epoch the event belongs to.
	Epoch() int

	isEvent()
}

// common carries the fields every event shares.
type common struct {
	Cycle      uint64 // machine cycle when the monitor observed the event
	EpochIndex int    // detection epoch in progress
}

func (c common) When() uint64 { return c.Cycle }
func (c common) Epoch() int   { return c.EpochIndex }
func (c common) isEvent()     {}

// SampleBatch reports one driver poll that returned HITM records — the
// read() on the kernel device coming back non-empty.
type SampleBatch struct {
	common
	// Records is the number of HITM records in the batch.
	Records int
	// Dropped is true when the batch was drained without feeding the
	// detector (post-repair with monitoring frozen).
	Dropped bool
}

func (e SampleBatch) String() string {
	return fmt.Sprintf("[%d] sample batch: %d records (epoch %d)", e.Cycle, e.Records, e.EpochIndex)
}

// DetectionReport carries a windowed detector report: emitted at every
// epoch boundary and at session end, covering that epoch's observation
// window only.
type DetectionReport struct {
	common
	Report *core.Report
}

func (e DetectionReport) String() string {
	return fmt.Sprintf("[%d] detection report: %d lines over %.2f ms (epoch %d)",
		e.Cycle, len(e.Report.Lines), e.Report.Seconds*1e3, e.EpochIndex)
}

// RepairTriggered reports that the §4.4 false-sharing rate threshold was
// crossed and LASERDETECT handed candidate PCs to LASERREPAIR.
type RepairTriggered struct {
	common
	// Candidates are the contending PCs, most active first (original-
	// program addresses).
	Candidates []mem.Addr
}

func (e RepairTriggered) String() string {
	return fmt.Sprintf("[%d] repair triggered: %d candidate PCs (epoch %d)",
		e.Cycle, len(e.Candidates), e.EpochIndex)
}

// RepairApplied reports that LASERREPAIR hot-swapped a rewritten program
// into the machine.
type RepairApplied struct {
	common
	// Conservative is true when the installed rewrite has speculative
	// alias analysis disabled (the §5.3 fallback).
	Conservative bool
	// Candidate names the installed repair strategy ("ssb" on the
	// direct path; the winning trial's candidate under speculative
	// repair).
	Candidate string
}

func (e RepairApplied) String() string {
	return fmt.Sprintf("[%d] repair applied: %s (epoch %d)", e.Cycle, e.Candidate, e.EpochIndex)
}

// RepairDeclined reports that a triggered repair was refused: by the
// static analysis (unprofitable, or the region is too complex), or —
// under speculative repair — because no measured trial beat the no-op
// baseline. The session stops re-triggering afterwards; Err is also
// recorded as the Result's RepairErr.
type RepairDeclined struct {
	common
	Err error
	// Winner is the trial winner's name when the decline is a measured
	// one ("decline"); empty on the static-analysis path.
	Winner string
}

func (e RepairDeclined) String() string {
	return fmt.Sprintf("[%d] repair declined: %v (epoch %d)", e.Cycle, e.Err, e.EpochIndex)
}

// RepairTrialStarted reports that speculative repair forked the session
// to race candidate fixes from the trigger cut.
type RepairTrialStarted struct {
	common
	// Candidates are the strategy names racing, in canonical order.
	Candidates []string
	// Budget is the simulated-cycle budget each trial fork may run.
	Budget uint64
}

func (e RepairTrialStarted) String() string {
	return fmt.Sprintf("[%d] repair trials started: %d candidates, budget %d cycles (epoch %d)",
		e.Cycle, len(e.Candidates), e.Budget, e.EpochIndex)
}

// RepairTrialResult carries one candidate's measured trial outcome: the
// cycle/instruction/HITM deltas its fork accumulated over the trial
// budget. One result is emitted per candidate, in canonical order,
// after every fork has finished.
type RepairTrialResult struct {
	common
	Candidate    string
	Cycles       uint64
	Instructions uint64
	HITMs        uint64
	// Completed reports that the fork ran the workload to completion
	// inside the budget.
	Completed bool
	// Winner marks the candidate the selector chose.
	Winner bool
	// Err is why the candidate never ran (analysis refused), or empty.
	Err string
}

func (e RepairTrialResult) String() string {
	return fmt.Sprintf("[%d] repair trial %s: cycles=%d hitms=%d completed=%v winner=%v (epoch %d)",
		e.Cycle, e.Candidate, e.Cycles, e.HITMs, e.Completed, e.Winner, e.EpochIndex)
}

// EpochEnd closes a detection epoch: after a repair hot-swap (Repaired
// true) or at session end (Repaired false). Report is the epoch's
// windowed detection report — the same one carried by the paired
// DetectionReport event.
type EpochEnd struct {
	common
	Repaired bool
	Report   *core.Report
}

func (e EpochEnd) String() string {
	return fmt.Sprintf("[%d] epoch %d end (repaired=%v)", e.Cycle, e.EpochIndex, e.Repaired)
}

// eventStream adapts synchronous observer callbacks to a channel without
// ever blocking the session: events queue without bound and a pump
// goroutine forwards them. close drains the queue and then closes the
// channel; abort discards whatever is still queued and closes the
// channel immediately, so a stream whose consumer vanished (an
// abandoned server session) never strands the pump goroutine.
type eventStream struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Event
	closed  bool
	aborted bool
	dead    chan struct{} // closed by abort: unblocks a pump stuck sending
	ch      chan Event
}

func newEventStream() *eventStream {
	s := &eventStream{ch: make(chan Event), dead: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

func (s *eventStream) push(e Event) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, e)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *eventStream) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.aborted || len(s.queue) == 0 {
			s.mu.Unlock()
			close(s.ch)
			return
		}
		e := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case s.ch <- e:
		case <-s.dead:
			close(s.ch)
			return
		}
	}
}

func (s *eventStream) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
}

// abort closes the stream without waiting for a consumer: queued events
// are dropped, a pump blocked mid-send is released, and the channel
// closes. Idempotent, and safe after close.
func (s *eventStream) abort() {
	s.mu.Lock()
	if !s.aborted {
		s.aborted = true
		s.closed = true
		s.queue = nil
		close(s.dead)
	}
	s.cond.Signal()
	s.mu.Unlock()
}
