package laser

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pebs"
	"repro/internal/repair"
	"repro/internal/workload"
)

// DefaultMaxEpochs is the detect→repair epoch budget of a Session when
// WithMaxEpochs is not given: enough to re-arm repeatedly without letting
// a pathological workload swap programs forever.
const DefaultMaxEpochs = 8

// Session errors.
var (
	// ErrClosed is returned by Step (and everything built on it) after
	// Close.
	ErrClosed = errors.New("laser: session closed")
	// ErrRunning is returned by Result while the workload has not yet
	// run to completion.
	ErrRunning = errors.New("laser: session still running")
)

// EpochReport describes one detect→repair epoch of a session: its
// windowed detection report and the monitoring activity it cost.
type EpochReport struct {
	// Epoch is the epoch's index, starting at 0.
	Epoch int
	// Seconds is the epoch's observation window (simulated).
	Seconds float64
	// Report is the detector's report over this epoch's records only.
	Report *core.Report
	// Repaired says whether the epoch ended with a repair hot-swap
	// (false for the final epoch, which ends with the workload).
	Repaired bool
	// Driver and PEBS are the monitoring-cost deltas incurred during
	// this epoch.
	Driver driver.Stats
	PEBS   pebs.Stats
}

// Session is a live LASER monitoring session around one workload image —
// the paper's Figure 8 architecture with an explicit lifecycle. Attach
// builds the full stack (machine, PEBS unit, kernel driver model,
// LASERDETECT pipeline, LASERREPAIR controller); Step advances the
// monitor by one poll interval; Run/Wait drive it to completion;
// Snapshot produces a mid-run report at any moment; Events and
// WithObserver stream typed events as monitoring unfolds.
//
// Unlike the one-shot Run, a session is multi-epoch: when LASERREPAIR
// rewrites the program, the rewrite's PC translation table is threaded
// into the detector, which re-arms and keeps attributing post-repair
// HITM records to the original binary. A later contention flare-up can
// trigger repair again (up to the epoch budget); each epoch's windowed
// report and monitoring cost land in Result.Epochs.
//
// A Session is not safe for fully concurrent use: drive it (Step, Run,
// RunFor, Wait, snapshots) from one goroutine at a time. Three things
// are safe from any goroutine, because a server hosting many sessions
// needs them to be: the Events channel may be consumed anywhere,
// Events itself may be called anywhere, and Close/Detach may race an
// in-flight Run or Step — the driving goroutine observes ErrClosed at
// its next step boundary, and both remain idempotent.
type Session struct {
	cfg                Config
	monitorAfterRepair bool

	// obsMu guards observers and stream: Events and Close/Detach may be
	// called from goroutines other than the driving one.
	obsMu     sync.Mutex
	observers []func(Event)
	stream    *eventStream

	img  *workload.Image
	m    *machine.Machine
	drv  *driver.Driver
	pmu  *pebs.Unit
	pipe *core.Pipeline
	ctl  *repair.Controller

	next   uint64 // next poll deadline (simulated cycles)
	done   bool
	closed atomic.Bool

	epoch      int
	epochStart float64      // seconds at the current epoch's start
	epochDrv   driver.Stats // stats snapshots at the epoch's start
	epochPEBS  pebs.Stats
	epochs     []EpochReport
	lastGen    int // repair controller generation last seen

	repairApplied bool
	repairErr     error
	// trial marks a speculative-repair fork: its maybeRepair is inert
	// (the fork's candidate was installed at fork time; forks never
	// recurse into trials) and it reports to no observers.
	trial bool
	// trialWinner and trials record the speculative-trial outcome for
	// the Result (and the session snapshot).
	trialWinner string
	trials      []repair.TrialResult
	// covered are candidate PCs already handed to the repair controller;
	// the trigger only re-fires when fresh candidates appear, so a
	// residual false-sharing tail at an already-rewritten site does not
	// spin the trigger, while new contention later still repairs.
	covered map[mem.Addr]bool

	res *Result
}

// Attach builds the full LASER stack around an already-built workload
// image and returns the session, stopped at cycle zero. Options are
// applied over DefaultConfig; the first invalid option or configuration
// aborts the attach. The caller should Close the session when done with
// it.
//
// Note that Attach monitors the image exactly as built: the heap
// perturbation the fork-based attach inflicts on a process (AttachBias)
// is a build-time option, applied by the Run convenience wrapper.
func Attach(img *workload.Image, opts ...Option) (*Session, error) {
	st := settings{cfg: DefaultConfig(), monitorAfterRepair: true}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&st); err != nil {
			return nil, fmt.Errorf("laser: %w", err)
		}
	}
	if st.cfg.MaxEpochs == 0 {
		st.cfg.MaxEpochs = DefaultMaxEpochs
	}
	if err := resolvePollInterval(&st); err != nil {
		return nil, err
	}
	if err := st.cfg.Validate(); err != nil {
		return nil, err
	}
	return newSession(img, st)
}

// resolvePollInterval settles the session's poll cadence after every
// option has applied. An explicit WithPollInterval is used verbatim;
// WithAutoPollInterval scales the configured base — DefaultConfig's or
// WithConfig's — by the workload scale (it conflicts with
// WithPollInterval); and when nobody chose any cadence, a bounded run
// (MaxCycles set below the default cadence) derives one from the
// machine's run budget, so even a short capped session gets several
// §4.4 trigger checks instead of none at all. A cadence carried in by
// WithConfig is never rewritten by the bounded-run rule: that caller
// chose it.
func resolvePollInterval(st *settings) error {
	if st.autoPollScale > 0 {
		if st.pollSource == pollExplicit {
			return errors.New("laser: WithAutoPollInterval conflicts with WithPollInterval: pick one")
		}
		base := st.cfg.PollInterval
		if base == 0 {
			base = DefaultConfig().PollInterval
		}
		st.cfg.PollInterval = AutoPollInterval(base, st.autoPollScale)
		return nil
	}
	if st.pollSource != pollDefault || st.cfg.MaxCycles == 0 {
		return nil
	}
	base := st.cfg.PollInterval
	if base == 0 {
		base = DefaultConfig().PollInterval
	}
	if st.cfg.MaxCycles < base {
		// boundedRunPolls checks per capped run, matching the full-length
		// budget: a 2M-cycle cadence polls a typical full-scale workload
		// a handful of times before exit.
		const boundedRunPolls = 4
		iv := st.cfg.MaxCycles / boundedRunPolls
		if iv < 1 {
			iv = 1
		}
		st.cfg.PollInterval = iv
	}
	return nil
}

// newSession wires the Figure 8 processes together. st.cfg must already
// be validated.
func newSession(img *workload.Image, st settings) (*Session, error) {
	cfg := st.cfg
	vm := img.VMMap()
	drv := driver.New(cfg.Driver)
	pmu := pebs.New(cfg.PEBS, cfg.Cores, img.Prog, vm, drv)
	pipe, err := core.NewPipeline(cfg.Detector, vm.Render(), img.Prog)
	if err != nil {
		return nil, fmt.Errorf("laser: %w", err)
	}

	var ctl *repair.Controller
	mcfg := machine.Config{
		Cores:       cfg.Cores,
		Probe:       pmu,
		MaxCycles:   cfg.MaxCycles,
		Parallelism: cfg.IntraRunParallelism,
		SegmentJIT:  cfg.SegmentJIT,
		PrivateData: img.PrivateRanges(),
		OnAliasMiss: func(tid int, pc mem.Addr) {
			if ctl != nil {
				ctl.OnAliasMiss(tid, pc)
			}
		},
	}
	m := machine.New(img.Prog, mcfg, img.Specs)
	img.Init(m)
	ctl = repair.NewController(cfg.Repair, m)

	return &Session{
		cfg:                cfg,
		monitorAfterRepair: st.monitorAfterRepair,
		observers:          st.observers,
		img:                img,
		m:                  m,
		drv:                drv,
		pmu:                pmu,
		pipe:               pipe,
		ctl:                ctl,
		next:               cfg.PollInterval,
	}, nil
}

// Events returns the session's event channel. The channel never blocks
// the session (events queue internally without bound) and is closed by
// Close; consume it until closed, or end the session with Detach if the
// consumer may abandon it. Repeated calls return the same channel, and
// Events may be called from any goroutine.
func (s *Session) Events() <-chan Event {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if s.stream == nil {
		s.stream = newEventStream()
		s.observers = append(s.observers, s.stream.push)
		if s.closed.Load() {
			s.stream.close()
		}
	}
	return s.stream.ch
}

// emit delivers an event to every observer, synchronously and in order.
func (s *Session) emit(e Event) {
	s.obsMu.Lock()
	obs := s.observers
	s.obsMu.Unlock()
	for _, fn := range obs {
		fn(e)
	}
}

// EpochIndex returns the detection epoch in progress.
func (s *Session) EpochIndex() int { return s.epoch }

// Stats returns the monitored machine's statistics so far.
func (s *Session) Stats() *machine.Stats { return s.m.Stats() }

// Snapshot returns the detector's cumulative report at this moment,
// using the configured rate threshold — the exit report, available at
// any point mid-run.
func (s *Session) Snapshot() *core.Report {
	return s.SnapshotAt(s.cfg.Detector.RateThreshold)
}

// SnapshotAt is Snapshot with an explicit rate threshold: the Figure 9
// offline re-thresholding, applicable mid-run because the detector
// retains its aggregates.
func (s *Session) SnapshotAt(threshold float64) *core.Report {
	return s.pipe.ReportAt(s.m.Stats().Seconds(), threshold)
}

// EpochSnapshot returns the detector's report over only the current
// epoch's window so far.
func (s *Session) EpochSnapshot() *core.Report {
	return s.pipe.EpochReportAt(s.m.Stats().Seconds(), s.cfg.Detector.RateThreshold)
}

// SnapshotInto rebuilds dst as the cumulative report at this moment,
// reusing dst's buffers — the allocation-free variant of Snapshot for
// streaming consumers that poll every Step. dst is overwritten wholesale
// and stays valid until its next reuse.
func (s *Session) SnapshotInto(dst *core.Report) {
	s.SnapshotAtInto(dst, s.cfg.Detector.RateThreshold)
}

// SnapshotAtInto is SnapshotInto with an explicit rate threshold.
func (s *Session) SnapshotAtInto(dst *core.Report, threshold float64) {
	s.pipe.ReportAtInto(dst, s.m.Stats().Seconds(), threshold)
}

// EpochSnapshotInto is the allocation-free counterpart of EpochSnapshot.
func (s *Session) EpochSnapshotInto(dst *core.Report) {
	s.pipe.EpochReportAtInto(dst, s.m.Stats().Seconds(), s.cfg.Detector.RateThreshold)
}

// Step advances the session by one poll interval: the workload runs
// until the next poll deadline, the driver device is drained, records
// feed the detection pipeline, and the repair trigger is checked — one
// iteration of the Figure 8 monitor loop. It returns done=true once the
// workload has run to completion and the session result is final.
//
// A panicking workload (or detector/repair stage) is contained: the
// machine converts execution panics into a *machine.PanicError with its
// worker goroutines joined, a recover here catches the monitor side,
// and either way the session turns terminal — the error is returned,
// the panic never unwinds into the caller, and no goroutine leaks.
func (s *Session) Step() (done bool, err error) {
	if s.closed.Load() {
		return true, ErrClosed
	}
	if s.done {
		return true, nil
	}
	defer func() {
		if r := recover(); r != nil {
			s.done = true
			done = true
			if pe, ok := r.(*machine.PanicError); ok {
				err = pe
			} else {
				err = &machine.PanicError{Value: r, Stack: debug.Stack()}
			}
		}
	}()
	done, err = s.m.RunFor(s.next)
	if err != nil {
		s.done = true
		return true, err
	}
	s.ingest()
	if done {
		s.finish()
		return true, nil
	}
	s.maybeRepair()
	s.next += s.cfg.PollInterval
	return false, nil
}

// RunFor advances the session by at least the given number of simulated
// cycles (rounded up to whole poll intervals). It returns done=true if
// the workload completed within the slice.
func (s *Session) RunFor(cycles uint64) (bool, error) {
	deadline := s.m.Stats().Cycles + cycles
	for {
		done, err := s.Step()
		if done || err != nil {
			return done, err
		}
		if s.m.Stats().Cycles >= deadline {
			return false, nil
		}
	}
}

// Run drives the session to completion, checking ctx between steps. On
// cancellation it returns the context's error with a partial Result
// (pipeline state for offline analysis; no final stats).
func (s *Session) Run(ctx context.Context) (*Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			return s.partialResult(), err
		}
		done, err := s.Step()
		if err != nil {
			return s.partialResult(), err
		}
		if done {
			return s.Result()
		}
	}
}

// Wait drives the session to completion and returns the final Result.
func (s *Session) Wait() (*Result, error) {
	return s.Run(context.Background())
}

// Result returns the session's aggregated result. It is available once
// the workload has run to completion (Step returned done, or Run/Wait
// returned).
func (s *Session) Result() (*Result, error) {
	if s.res == nil {
		return nil, ErrRunning
	}
	return s.res, nil
}

// Close releases the session: the event stream is closed (after
// delivering anything still queued) and further Steps fail with
// ErrClosed. Closing neither aborts nor completes the simulated
// workload; a session may be closed at any point, and Close is
// idempotent. Close may be called from any goroutine, including while
// another drives Run or Step: the driver sees ErrClosed at its next
// step boundary.
//
// Close waits for nobody, but delivery of already-queued events to the
// Events channel does: a consumer that stops receiving before the
// channel closes strands the queued tail (and its pump goroutine). When
// the consumer cannot be trusted to drain — a network client that
// disconnected, a TTL-reaped server session — use Detach instead.
func (s *Session) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.obsMu.Lock()
	if s.stream != nil {
		s.stream.close()
	}
	s.obsMu.Unlock()
	return nil
}

// Detach ends the session like Close but discards events still queued
// for the Events channel instead of waiting for a consumer to drain
// them: the channel closes immediately and no goroutine is left behind,
// even when nobody is receiving. It is the right close for a session
// whose observer has gone away — laserd's TTL reaper uses it. Detach is
// idempotent, safe from any goroutine, and also releases a stream
// already closed gracefully but never drained.
func (s *Session) Detach() error {
	s.closed.Store(true)
	s.obsMu.Lock()
	if s.stream != nil {
		s.stream.abort()
	}
	s.obsMu.Unlock()
	return nil
}

// frozen reports whether monitoring results are frozen: a repair is
// installed and the session was asked for the one-shot behaviour, where
// the exit report keeps the pre-repair contention (the paper's
// detector does the same).
func (s *Session) frozen() bool {
	return s.repairApplied && !s.monitorAfterRepair
}

// ingest drains the driver device and feeds the pipeline (unless
// frozen), refreshing the PC remap table first so post-repair records
// attribute to the original program.
func (s *Session) ingest() {
	recs := s.drv.Poll()
	if s.frozen() {
		if len(recs) > 0 {
			s.emit(SampleBatch{common: s.at(), Records: len(recs), Dropped: true})
		}
		return
	}
	s.refreshRemap()
	s.pipe.Feed(recs)
	if len(recs) > 0 {
		s.emit(SampleBatch{common: s.at(), Records: len(recs)})
	}
}

// refreshRemap re-reads the repair controller's PC translation table
// after any program hot-swap (install, conservative refinement, undo).
func (s *Session) refreshRemap() {
	if gen := s.ctl.Generation(); gen != s.lastGen {
		s.pipe.SetPCRemap(s.ctl.PCRemap())
		s.lastGen = gen
	}
}

// at stamps an event with the current cycle and epoch.
func (s *Session) at() common {
	return common{Cycle: s.m.Stats().Cycles, EpochIndex: s.epoch}
}

// maybeRepair runs the §4.4 trigger check and, when it fires with fresh
// candidates, hands them to LASERREPAIR. A successful hot-swap ends the
// epoch.
func (s *Session) maybeRepair() {
	if s.trial || !s.cfg.EnableRepair || s.repairErr != nil || s.epoch >= s.cfg.MaxEpochs {
		return
	}
	st := s.m.Stats()
	seconds := st.Seconds()
	pcs, ok := s.pipe.RepairCandidates(seconds)
	if !ok {
		return
	}
	if s.covered != nil {
		fresh := false
		for _, pc := range pcs {
			if !s.covered[pc] {
				fresh = true
				break
			}
		}
		if !fresh {
			return
		}
	}
	s.emit(RepairTriggered{common: s.at(), Candidates: pcs})
	// Records still sitting in per-core PEBS buffers were sampled from
	// the program about to be replaced; flush and feed them under the
	// current remap table before the swap, or they would be translated
	// with the wrong table later. The one-shot wrappers freeze
	// monitoring at the repair instead — there the stragglers are
	// dropped, exactly as the historical implementation did.
	if s.monitorAfterRepair {
		s.pmu.Drain()
		s.ingest()
	}
	genBefore := s.ctl.Generation()
	var applyErr error
	if s.cfg.SpeculativeRepair && !s.ctl.Applied() {
		// First install under speculative repair: race the candidate
		// slate from this cut and apply the measured winner.
		applyErr = s.applyMeasured(pcs)
	} else {
		applyErr = s.ctl.Apply(pcs)
	}
	if applyErr != nil {
		s.repairErr = applyErr
		s.emit(RepairDeclined{common: s.at(), Err: applyErr, Winner: s.trialWinner})
		return
	}
	if s.covered == nil {
		s.covered = make(map[mem.Addr]bool, len(pcs))
	}
	for _, pc := range pcs {
		s.covered[pc] = true
	}
	if s.ctl.Generation() == genBefore {
		// Every candidate was already covered by the installed rewrite;
		// nothing changed, so the epoch keeps running.
		return
	}
	s.repairApplied = true
	s.refreshRemap()
	s.emit(RepairApplied{common: s.at(), Conservative: s.ctl.Conservative(),
		Candidate: s.ctl.Candidate()})
	s.endEpoch(seconds, true)
}

// endEpoch archives the epoch's windowed report and monitoring cost and
// emits DetectionReport and EpochEnd. After a repair (repaired true) it
// also re-arms the pipeline for the next epoch; the final epoch — closed
// by the workload ending — leaves the pipeline's counters intact so
// offline analysis (RepairCandidates, re-thresholding) still sees them.
func (s *Session) endEpoch(seconds float64, repaired bool) {
	drvNow, pmuNow := s.drv.Stats(), s.pmu.Stats()
	ep := EpochReport{
		Epoch:    s.epoch,
		Seconds:  seconds - s.epochStart,
		Report:   s.pipe.EpochReportAt(seconds, s.cfg.Detector.RateThreshold),
		Repaired: repaired,
		Driver:   drvNow.Sub(s.epochDrv),
		PEBS:     pmuNow.Sub(s.epochPEBS),
	}
	s.epochs = append(s.epochs, ep)
	s.emit(DetectionReport{common: s.at(), Report: ep.Report})
	s.emit(EpochEnd{common: s.at(), Repaired: repaired, Report: ep.Report})
	if repaired {
		s.epoch++
		s.epochStart = seconds
		s.epochDrv, s.epochPEBS = drvNow, pmuNow
		s.pipe.BeginEpoch(seconds)
	}
}

// finish runs when the workload completes: residual PEBS buffers drain
// through the driver, the final epoch closes, and the Result is built.
func (s *Session) finish() {
	s.done = true
	s.pmu.Drain()
	s.ingest()

	st := s.m.Stats()
	seconds := st.Seconds()
	s.endEpoch(seconds, false)

	s.res = &Result{
		Stats:         st,
		Report:        s.pipe.Report(seconds),
		Pipeline:      s.pipe,
		RepairApplied: s.repairApplied,
		RepairErr:     s.repairErr,
		RepairWinner:  s.trialWinner,
		RepairTrials:  s.trials,
		Seconds:       seconds,
		DriverStats:   s.drv.Stats(),
		PEBSStats:     s.pmu.Stats(),
		DetectorCycle: s.pipe.DetectorCycles(),
		Epochs:        s.epochs,
	}
}

// partialResult mirrors what the one-shot path returned alongside an
// error: the pipeline (for offline analysis) and the repair outcome so
// far, without final statistics.
func (s *Session) partialResult() *Result {
	return &Result{
		Pipeline:      s.pipe,
		RepairApplied: s.repairApplied,
		RepairErr:     s.repairErr,
		RepairWinner:  s.trialWinner,
		RepairTrials:  s.trials,
		Epochs:        s.epochs,
	}
}
