package laser_test

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
	"repro/laser"
)

// pickStep derives a deterministic pseudo-random capture point in
// [0, steps) from the test identity, so the sweep exercises different
// boundaries per workload without flaking across runs.
func pickStep(name string, par, steps int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	h.Write([]byte{byte(par)})
	return int(h.Sum32() % uint32(steps))
}

func encodeState(t *testing.T, st *laser.SessionState) []byte {
	t.Helper()
	b, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// driveToDone steps a session to completion and returns the number of
// Step calls it took.
func driveToDone(t *testing.T, s *laser.Session) int {
	t.Helper()
	steps := 0
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			return steps
		}
	}
}

// roundTrip runs the capture/restore experiment for one image builder:
// an uninterrupted twin A records the reference event stream and result;
// twin B is stopped at the chosen Step boundary, snapshotted through a
// full Encode/Decode cycle, discarded, and rebuilt with RestoreSession,
// which then runs to completion. The restored session must produce the
// missing event-stream suffix byte for byte, the identical result, and a
// final snapshot whose encoding matches twin A's.
func roundTrip(t *testing.T, name string, par, captureAt int, build func() *workload.Image, opts func(obs func(laser.Event)) []laser.Option) {
	t.Helper()

	var refEvents []string
	sa, err := laser.Attach(build(), opts(func(e laser.Event) {
		refEvents = append(refEvents, fmt.Sprint(e))
	})...)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	steps := driveToDone(t, sa)
	resA, err := sa.Result()
	if err != nil {
		t.Fatal(err)
	}
	finalA := encodeState(t, sa.CaptureState())

	if captureAt < 0 {
		captureAt = pickStep(name, par, steps)
	}
	if captureAt >= steps {
		captureAt = steps - 1
	}

	var preEvents []string
	sb, err := laser.Attach(build(), opts(func(e laser.Event) {
		preEvents = append(preEvents, fmt.Sprint(e))
	})...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < captureAt; i++ {
		done, err := sb.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("twin finished after %d steps, reference took %d", i+1, steps)
		}
	}
	blob := encodeState(t, sb.CaptureState())
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := laser.DecodeSessionState(blob)
	if err != nil {
		t.Fatal(err)
	}
	var postEvents []string
	sr, err := laser.RestoreSession(build(), st, opts(func(e laser.Event) {
		postEvents = append(postEvents, fmt.Sprint(e))
	})...)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	driveToDone(t, sr)
	resR, err := sr.Result()
	if err != nil {
		t.Fatal(err)
	}
	finalR := encodeState(t, sr.CaptureState())

	got := append(append([]string(nil), preEvents...), postEvents...)
	if len(got) != len(refEvents) {
		t.Fatalf("capture@%d/%d: event counts differ: %d (pre %d + post %d) vs %d reference",
			captureAt, steps, len(got), len(preEvents), len(postEvents), len(refEvents))
	}
	for i := range got {
		if got[i] != refEvents[i] {
			t.Fatalf("capture@%d/%d: event %d differs:\n  restored:  %s\n  reference: %s",
				captureAt, steps, i, got[i], refEvents[i])
		}
	}
	if a, r := resA.Report.Render(), resR.Report.Render(); a != r {
		t.Fatalf("capture@%d/%d: rendered reports differ:\n%s\nvs\n%s", captureAt, steps, a, r)
	}
	if !reflect.DeepEqual(resA.Stats, resR.Stats) {
		t.Fatalf("capture@%d/%d: stats diverged:\n%+v\nvs\n%+v", captureAt, steps, resA.Stats, resR.Stats)
	}
	if resA.DriverStats != resR.DriverStats || resA.PEBSStats != resR.PEBSStats {
		t.Fatalf("capture@%d/%d: monitoring stats diverged", captureAt, steps)
	}
	if resA.RepairApplied != resR.RepairApplied || resA.DetectorCycle != resR.DetectorCycle {
		t.Fatalf("capture@%d/%d: repair/detector outcome diverged", captureAt, steps)
	}
	if !reflect.DeepEqual(resA.Epochs, resR.Epochs) {
		t.Fatalf("capture@%d/%d: epoch reports diverged", captureAt, steps)
	}
	if !bytes.Equal(finalA, finalR) {
		t.Fatalf("capture@%d/%d: final snapshots differ (%d vs %d bytes)",
			captureAt, steps, len(finalA), len(finalR))
	}
}

// TestSessionSnapshotRoundTripAllWorkloads captures every stock workload
// at a randomized Step boundary, under both the serial scheduler and the
// intra-run parallel engine, and demands restore transparency: the
// restored twin's remaining event stream, final result, rendered report
// and final snapshot encoding are byte-identical to an uninterrupted
// twin's.
func TestSessionSnapshotRoundTripAllWorkloads(t *testing.T) {
	scale := 0.15
	if testing.Short() {
		scale = 0.06
	}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, par := range []int{1, 4} {
				par := par
				t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
					build := func() *workload.Image {
						return w.Build(workload.Options{Scale: scale, HeapBias: laser.AttachBias})
					}
					opts := func(obs func(laser.Event)) []laser.Option {
						return []laser.Option{
							laser.WithSeed(11),
							laser.WithMaxEpochs(2),
							laser.WithIntraRunParallelism(par),
							laser.WithObserver(obs),
						}
					}
					roundTrip(t, w.Name, par, -1, build, opts)
				})
			}
		})
	}
}

// TestSessionSnapshotRoundTripAfterRepair pins the hard part of the
// restore path: a session captured after an applied repair, where the
// controller holds a rewritten program, the pipeline a PC remap, the
// session a coverage set, and the machine threads run at post-rewrite
// PCs. The two-phase image reliably produces a repair in epoch 1 and
// fresh contention afterwards, so the capture boundary lands between the
// two repairs.
func TestSessionSnapshotRoundTripAfterRepair(t *testing.T) {
	img := twoPhaseFSImage(150_000)
	opts := func(obs func(laser.Event)) []laser.Option {
		return []laser.Option{
			laser.WithMaxEpochs(4),
			laser.WithObserver(obs),
		}
	}
	build := func() *workload.Image { return img }

	// Find the first Step boundary at which a repair has been applied.
	repairs := 0
	firstRepairStep := -1
	probe, err := laser.Attach(img, opts(func(e laser.Event) {
		if _, ok := e.(laser.RepairApplied); ok {
			repairs++
		}
	})...)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := probe.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if firstRepairStep < 0 && repairs > 0 {
			firstRepairStep = steps
		}
		if done {
			break
		}
	}
	probe.Close()
	if repairs < 2 {
		t.Fatalf("expected at least two repairs, got %d", repairs)
	}
	if firstRepairStep < 0 || firstRepairStep >= steps {
		t.Fatalf("no mid-run repair boundary (first repair at step %d of %d)", firstRepairStep, steps)
	}

	roundTrip(t, "twophase", 1, firstRepairStep, build, opts)
}

// TestSessionSnapshotRoundTripDone: a snapshot of a finished session
// restores with its Result intact.
func TestSessionSnapshotRoundTripDone(t *testing.T) {
	w, _ := workload.Get("linear_regression")
	img := w.Build(workload.Options{Scale: 0.3, HeapBias: laser.AttachBias})
	s, err := laser.Attach(img, laser.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	blob := encodeState(t, s.CaptureState())
	st, err := laser.DecodeSessionState(blob)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := laser.RestoreSession(img, st, laser.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	done, err := sr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("restored finished session is not done")
	}
	resR, err := sr.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Render() != resR.Report.Render() {
		t.Fatal("restored result report differs")
	}
	if !reflect.DeepEqual(res.Stats, resR.Stats) {
		t.Fatal("restored result stats differ")
	}
	if res.Seconds != resR.Seconds || res.DriverStats != resR.DriverStats || res.PEBSStats != resR.PEBSStats {
		t.Fatal("restored result scalars differ")
	}
}

// TestRestoreSessionRefusals: a snapshot must not restore onto a
// divergent configuration or a different execution engine.
func TestRestoreSessionRefusals(t *testing.T) {
	w, _ := workload.Get("linear_regression")
	img := w.Build(workload.Options{Scale: 0.2, HeapBias: laser.AttachBias})
	s, err := laser.Attach(img, laser.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	st := s.CaptureState()

	if _, err := laser.RestoreSession(img, st, laser.WithSeed(4)); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("expected fingerprint refusal, got %v", err)
	}
	// IntraRunParallelism is excluded from the fingerprint (it must not
	// change results), but the engine's first-touch tables are not
	// portable across engine kinds, so flipping serial<->parallel is
	// refused separately.
	if _, err := laser.RestoreSession(img, st, laser.WithSeed(3), laser.WithIntraRunParallelism(4)); err == nil ||
		!strings.Contains(err.Error(), "parallel") {
		t.Fatalf("expected engine-kind refusal, got %v", err)
	}

	good, err := laser.RestoreSession(img, st, laser.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	good.Close()
}
