package laser

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestAutoPollIntervalMath(t *testing.T) {
	const base = 2_000_000
	for _, tc := range []struct {
		scale float64
		want  uint64
	}{
		{1, base},    // full fidelity: exactly the paper's cadence
		{2.5, base},  // scaling up never shortens the cadence
		{0.5, base / 2},
		{0.3, 600_000},
		{1e-9, 1}, // floor: the cadence never collapses to zero
	} {
		if got := AutoPollInterval(base, tc.scale); got != tc.want {
			t.Errorf("AutoPollInterval(%d, %g) = %d, want %d", base, tc.scale, got, tc.want)
		}
	}
}

func TestAutoTrialBudgetMath(t *testing.T) {
	const base = 2_000_000
	for _, tc := range []struct {
		scale float64
		want  uint64
	}{
		{1, 8_000_000},    // full fidelity: the historical 4× poll interval
		{2.5, 8_000_000},  // scaling up never stretches the cadence or the budget
		{0.5, 4_000_000},  // proportional band: budget follows the cadence
		{0.2, 1_600_000},
		{0.05, 400_000},   // exactly the floor
		{0.01, 400_000},   // below: a trial still outlives two quanta
		{1e-9, 400_000},
	} {
		if got := AutoTrialBudget(base, tc.scale); got != tc.want {
			t.Errorf("AutoTrialBudget(%d, %g) = %d, want %d", base, tc.scale, got, tc.want)
		}
	}
	// A slow cadence is capped instead of burning 4× its full period.
	if got := AutoTrialBudget(8_000_000, 1); got != maxTrialBudget {
		t.Errorf("AutoTrialBudget(8M, 1) = %d, want cap %d", got, maxTrialBudget)
	}
	// Composition: deriving from an already-resolved cadence at scale 1
	// equals deriving from the base cadence at the original scale.
	for _, scale := range []float64{1e-9, 0.01, 0.2, 0.5, 1, 3} {
		resolved := AutoPollInterval(base, scale)
		if a, b := AutoTrialBudget(resolved, 1), AutoTrialBudget(base, scale); a != b {
			t.Errorf("scale %g: AutoTrialBudget(resolved, 1) = %d != AutoTrialBudget(base, scale) = %d", scale, a, b)
		}
	}
}

// The option path: an auto-derived cadence lands in the session config,
// scaled from the configured base.
func TestWithAutoPollIntervalResolution(t *testing.T) {
	st := settings{cfg: DefaultConfig()}
	if err := WithAutoPollInterval(0.25)(&st); err != nil {
		t.Fatal(err)
	}
	if err := resolvePollInterval(&st); err != nil {
		t.Fatal(err)
	}
	if want := DefaultConfig().PollInterval / 4; st.cfg.PollInterval != want {
		t.Errorf("resolved PollInterval = %d, want %d", st.cfg.PollInterval, want)
	}

	// An explicit WithPollInterval is used verbatim...
	st = settings{cfg: DefaultConfig()}
	if err := WithPollInterval(123_456)(&st); err != nil {
		t.Fatal(err)
	}
	if err := resolvePollInterval(&st); err != nil {
		t.Fatal(err)
	}
	if st.cfg.PollInterval != 123_456 {
		t.Errorf("explicit PollInterval rewritten to %d", st.cfg.PollInterval)
	}

	// ...and combining the two is a configuration error, not a silent
	// precedence rule.
	st = settings{cfg: DefaultConfig()}
	if err := WithPollInterval(123_456)(&st); err != nil {
		t.Fatal(err)
	}
	if err := WithAutoPollInterval(0.5)(&st); err != nil {
		t.Fatal(err)
	}
	if err := resolvePollInterval(&st); err == nil ||
		!strings.Contains(err.Error(), "WithAutoPollInterval") {
		t.Errorf("conflicting poll options resolved without error (err %v)", err)
	}
}

func TestWithAutoPollIntervalValidation(t *testing.T) {
	w, _ := workload.Get("blackscholes")
	img := w.Build(workload.Options{Scale: 0.1})
	for _, bad := range []float64{0, -1} {
		if _, err := Attach(img, WithAutoPollInterval(bad)); err == nil {
			t.Errorf("WithAutoPollInterval(%g) accepted", bad)
		}
	}
	s, err := Attach(img, WithAutoPollInterval(0.1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if want := AutoPollInterval(DefaultConfig().PollInterval, 0.1); s.cfg.PollInterval != want {
		t.Errorf("attached session polls every %d cycles, want %d", s.cfg.PollInterval, want)
	}
}

// A bounded session (MaxCycles below the default cadence) with no
// explicit poll configuration derives its cadence from the run budget,
// so it still reaches §4.4 trigger checks before the cap.
func TestBoundedRunDefaultPollInterval(t *testing.T) {
	st := settings{cfg: DefaultConfig()}
	st.cfg.MaxCycles = 100_000
	if err := resolvePollInterval(&st); err != nil {
		t.Fatal(err)
	}
	if st.cfg.PollInterval != 25_000 {
		t.Errorf("bounded-run PollInterval = %d, want 25000", st.cfg.PollInterval)
	}

	// A budget above the cadence changes nothing.
	st = settings{cfg: DefaultConfig()}
	st.cfg.MaxCycles = 10_000_000
	if err := resolvePollInterval(&st); err != nil {
		t.Fatal(err)
	}
	if st.cfg.PollInterval != DefaultConfig().PollInterval {
		t.Errorf("long bounded run rewrote PollInterval to %d", st.cfg.PollInterval)
	}

	// An explicit cadence wins over the bounded-run default.
	st = settings{cfg: DefaultConfig()}
	st.cfg.MaxCycles = 100_000
	if err := WithPollInterval(2_000_000)(&st); err != nil {
		t.Fatal(err)
	}
	if err := resolvePollInterval(&st); err != nil {
		t.Fatal(err)
	}
	if st.cfg.PollInterval != 2_000_000 {
		t.Errorf("explicit cadence rewritten to %d", st.cfg.PollInterval)
	}

	// So does a cadence carried in by WithConfig: that caller chose a
	// capped run with its own (possibly never-firing) poll interval.
	st = settings{}
	cfg := DefaultConfig()
	cfg.PollInterval = 5_000_000
	cfg.MaxCycles = 1_000_000
	if err := WithConfig(cfg)(&st); err != nil {
		t.Fatal(err)
	}
	if err := resolvePollInterval(&st); err != nil {
		t.Fatal(err)
	}
	if st.cfg.PollInterval != 5_000_000 {
		t.Errorf("WithConfig cadence rewritten to %d", st.cfg.PollInterval)
	}

	// A WithConfig with no cadence (zero PollInterval) stays eligible
	// for the bounded-run derivation.
	st = settings{}
	cfg = DefaultConfig()
	cfg.PollInterval = 0
	cfg.MaxCycles = 100_000
	if err := WithConfig(cfg)(&st); err != nil {
		t.Fatal(err)
	}
	if err := resolvePollInterval(&st); err != nil {
		t.Fatal(err)
	}
	if st.cfg.PollInterval != 25_000 {
		t.Errorf("config-without-cadence bounded run polls every %d, want 25000", st.cfg.PollInterval)
	}
}

// WithAutoPollInterval scales WithConfig's base cadence — the
// documented composition — while still conflicting with an explicit
// WithPollInterval.
func TestWithAutoPollIntervalScalesConfigBase(t *testing.T) {
	st := settings{}
	cfg := DefaultConfig()
	cfg.PollInterval = 1_000_000
	if err := WithConfig(cfg)(&st); err != nil {
		t.Fatal(err)
	}
	if err := WithAutoPollInterval(0.5)(&st); err != nil {
		t.Fatal(err)
	}
	if err := resolvePollInterval(&st); err != nil {
		t.Fatal(err)
	}
	if st.cfg.PollInterval != 500_000 {
		t.Errorf("auto cadence over a config base = %d, want 500000", st.cfg.PollInterval)
	}
}
