package laser

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/baseline/sheriff"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TestNativeEngineEquivalenceAllWorkloads runs every stock workload
// natively under the serial scheduler and the intra-run parallel engine
// (with sharing validation on) and demands identical statistics and HITM
// ground truth. This is the soundness check for every thread-private
// range the workloads declare: a declaration another thread touches
// either panics (validation) or diverges (comparison).
func TestNativeEngineEquivalenceAllWorkloads(t *testing.T) {
	scale := 0.2
	if testing.Short() {
		scale = 0.08
	}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			variants := []workload.Variant{workload.Native}
			if w.HasFix {
				variants = append(variants, workload.Fixed)
			}
			for _, v := range variants {
				run := func(par int) *machine.Stats {
					img := w.Build(workload.Options{Scale: scale, Variant: v})
					m := machine.New(img.Prog, machine.Config{
						Cores:             4,
						Parallelism:       par,
						DispatchThreshold: 64,
						PrivateData:       img.PrivateRanges(),
						ValidateSharing:   true,
					}, img.Specs)
					img.Init(m)
					st, err := m.Run()
					if err != nil {
						t.Fatalf("variant %d par %d: %v", v, par, err)
					}
					if par > 1 && !m.IntraRunParallel() {
						t.Fatalf("parallel engine not engaged")
					}
					return st
				}
				serial, parallel := run(1), run(4)
				if serial.Cycles != parallel.Cycles ||
					serial.Instructions != parallel.Instructions ||
					serial.MemAccesses != parallel.MemAccesses ||
					serial.HITMLoads != parallel.HITMLoads ||
					serial.HITMStores != parallel.HITMStores ||
					serial.Flushes != parallel.Flushes {
					t.Fatalf("variant %d: stats diverged\nserial:   %+v\nparallel: %+v", v, serial, parallel)
				}
				if !reflect.DeepEqual(serial.HITMByPC, parallel.HITMByPC) {
					t.Fatalf("variant %d: HITMByPC diverged", v)
				}
				if !reflect.DeepEqual(serial.CoreCycles, parallel.CoreCycles) {
					t.Fatalf("variant %d: per-core cycles diverged", v)
				}
			}
		})
	}
}

// TestSheriffEngineEquivalenceAllWorkloads covers the private-memory
// (Sheriff) execution model: overlay loads that miss must observe other
// threads' commits in the exact serial order — the regression behind
// the engine's full-hit-only segment rule.
func TestSheriffEngineEquivalenceAllWorkloads(t *testing.T) {
	scale := 0.3
	if testing.Short() {
		scale = 0.1
	}
	for _, w := range workload.All() {
		if w.Sheriff != sheriff.OK {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(par int) (*machine.Stats, []sheriff.Finding) {
				img := w.Build(workload.Options{Scale: scale})
				det := sheriff.NewDetector(sheriff.Detect, sheriff.DefaultConfig(), img.ResolveLine)
				m := machine.New(img.Prog, machine.Config{
					Cores: 4, PrivateMemory: true, OnCommit: det.OnCommit,
					MaxCycles: 1 << 38, Parallelism: par,
					PrivateData: img.PrivateRanges(), ValidateSharing: true,
				}, img.Specs)
				img.Init(m)
				st, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st, det.Findings()
			}
			serial, sf := run(1)
			parallel, pf := run(4)
			if serial.Cycles != parallel.Cycles || serial.Instructions != parallel.Instructions ||
				serial.Commits != parallel.Commits || serial.CommitCycles != parallel.CommitCycles {
				t.Fatalf("sheriff stats diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
			if !reflect.DeepEqual(sf, pf) {
				t.Fatalf("sheriff findings diverged: %v vs %v", sf, pf)
			}
		})
	}
}

// TestSessionEngineEquivalence runs the full LASER stack — PEBS sampling,
// driver, detector, online repair — serially and with intra-run
// parallelism, and demands byte-identical rendered reports, identical
// statistics, and the same repair outcome. Repair exercises the engine's
// post-rewrite conservative mode (register-only segments) and the
// settle-before-hot-swap path.
func TestSessionEngineEquivalence(t *testing.T) {
	for _, name := range []string{"histogram'", "linear_regression", "kmeans", "dedup"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(par int) (*Result, string) {
				w, ok := workload.Get(name)
				if !ok {
					t.Fatalf("unknown workload %q", name)
				}
				img := w.Build(workload.Options{Scale: 0.5, HeapBias: AttachBias})
				s, err := Attach(img,
					WithMaxEpochs(1),
					WithPostRepairMonitoring(false),
					WithIntraRunParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				res, err := s.Wait()
				if err != nil {
					t.Fatal(err)
				}
				return res, res.Report.Render()
			}
			sres, srep := run(1)
			pres, prep := run(4)
			if srep != prep {
				t.Fatalf("rendered reports differ:\nserial:\n%s\nparallel:\n%s", srep, prep)
			}
			if sres.Stats.Cycles != pres.Stats.Cycles ||
				sres.Stats.Instructions != pres.Stats.Instructions ||
				sres.RepairApplied != pres.RepairApplied ||
				sres.Seconds != pres.Seconds {
				t.Fatalf("results diverged: serial %+v vs parallel %+v", sres.Stats, pres.Stats)
			}
			if sres.DriverStats != pres.DriverStats || sres.PEBSStats != pres.PEBSStats {
				t.Fatalf("monitoring stats diverged")
			}
			if !reflect.DeepEqual(sres.Stats.HITMByPC, pres.Stats.HITMByPC) {
				t.Fatalf("HITMByPC diverged")
			}
		})
	}
}

// TestSessionEngineEventStream: the deterministic typed event stream must
// be identical under both engines, event for event.
func TestSessionEngineEventStream(t *testing.T) {
	record := func(par int) []string {
		w, _ := workload.Get("histogram'")
		img := w.Build(workload.Options{Scale: 0.4, HeapBias: AttachBias})
		var got []string
		s, err := Attach(img,
			WithMaxEpochs(2),
			WithIntraRunParallelism(par),
			WithObserver(func(e Event) { got = append(got, fmt.Sprintf("%v", e)) }))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Wait(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial, parallel := record(1), record(3)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("event streams diverged:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}
