package laser_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/workload"
	"repro/laser"
)

// panicImage builds a two-thread image that loops over private ALU work
// and then executes a corrupted instruction — the interpreter panics
// mid-run, which the session must contain as a returned error.
func panicImage(iters int64) *workload.Image {
	b := isa.NewBuilder().At("chaos.c", 1)
	b.Func("boom")
	b.Li(1, 0)
	b.Label("loop").Line(2)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, iters, "loop")
	b.Nop()
	b.Halt()
	prog := b.Build()
	prog.Instrs[4].Op = isa.Op(250)
	return &workload.Image{
		Prog:    prog,
		Specs:   []machine.ThreadSpec{{Entry: 0}, {Entry: 0}},
		Threads: 2,
	}
}

// spinImage builds a two-thread image that loops long enough for a
// context cancellation to land mid-run.
func spinImage(iters int64) *workload.Image {
	b := isa.NewBuilder().At("chaos.c", 1)
	b.Func("spin")
	b.Li(1, 0)
	b.Label("loop").Line(2)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, iters, "loop")
	b.Halt()
	prog := b.Build()
	return &workload.Image{
		Prog:    prog,
		Specs:   []machine.ThreadSpec{{Entry: 0}, {Entry: 0}},
		Threads: 2,
	}
}

// waitGoroutines polls until the goroutine count returns to at most
// base, failing with a full stack dump if it never does.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A panicking workload inside Session.Run must come back as a returned
// *machine.PanicError — never unwind into the caller — with every
// intra-run worker goroutine joined. The session is terminal afterwards.
func TestSessionContainsWorkloadPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := laser.Attach(panicImage(50_000), laser.WithIntraRunParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	var pe *machine.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run() error = %v, want *machine.PanicError", err)
	}
	if res == nil {
		t.Fatal("Run() returned no partial result alongside the panic error")
	}
	// Terminal: further steps report done without re-running anything.
	if done, err := s.Step(); !done || err != nil {
		t.Fatalf("Step() after contained panic = (%v, %v), want (true, nil)", done, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// Cancelling Run's context mid-run must return the context error with a
// partial result and leave no goroutine behind — the intra-run worker
// pool is joined at every RunFor slice boundary.
func TestSessionRunCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := laser.Attach(spinImage(5_000_000), laser.WithIntraRunParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Run(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run() after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run() did not return after cancellation")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}
