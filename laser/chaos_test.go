package laser_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/workload"
	"repro/laser"
)

// panicImage builds a two-thread image that loops over private ALU work
// and then executes a corrupted instruction — the interpreter panics
// mid-run, which the session must contain as a returned error.
func panicImage(iters int64) *workload.Image {
	b := isa.NewBuilder().At("chaos.c", 1)
	b.Func("boom")
	b.Li(1, 0)
	b.Label("loop").Line(2)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, iters, "loop")
	b.Nop()
	b.Halt()
	prog := b.Build()
	prog.Instrs[4].Op = isa.Op(250)
	return &workload.Image{
		Prog:    prog,
		Specs:   []machine.ThreadSpec{{Entry: 0}, {Entry: 0}},
		Threads: 2,
	}
}

// spinImage builds a two-thread image that loops long enough for a
// context cancellation to land mid-run.
func spinImage(iters int64) *workload.Image {
	b := isa.NewBuilder().At("chaos.c", 1)
	b.Func("spin")
	b.Li(1, 0)
	b.Label("loop").Line(2)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, iters, "loop")
	b.Halt()
	prog := b.Build()
	return &workload.Image{
		Prog:    prog,
		Specs:   []machine.ThreadSpec{{Entry: 0}, {Entry: 0}},
		Threads: 2,
	}
}

// waitGoroutines polls until the goroutine count returns to at most
// base, failing with a full stack dump if it never does.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A panicking workload inside Session.Run must come back as a returned
// *machine.PanicError — never unwind into the caller — with every
// intra-run worker goroutine joined. The session is terminal afterwards.
func TestSessionContainsWorkloadPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := laser.Attach(panicImage(50_000), laser.WithIntraRunParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	var pe *machine.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run() error = %v, want *machine.PanicError", err)
	}
	if res == nil {
		t.Fatal("Run() returned no partial result alongside the panic error")
	}
	// Terminal: further steps report done without re-running anything.
	if done, err := s.Step(); !done || err != nil {
		t.Fatalf("Step() after contained panic = (%v, %v), want (true, nil)", done, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// Close racing a live Run(ctx) from another goroutine — the laserd
// DELETE-while-running path — must be race-free and idempotent: the
// driving goroutine observes ErrClosed at its next step boundary, and
// no goroutine survives.
func TestSessionCloseRacesRun(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := laser.Attach(spinImage(5_000_000), laser.WithIntraRunParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Run(context.Background())
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	// Several concurrent closers: idempotence under the race, not just
	// in sequence.
	for i := 0; i < 4; i++ {
		go s.Close()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, laser.ErrClosed) {
			t.Fatalf("Run() after concurrent Close = %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run() did not return after concurrent Close")
	}
	waitGoroutines(t, base)
}

// An abandoned session — events queued on the Events channel, consumer
// gone — is what a TTL reaper finds. Close would wait forever for the
// vanished consumer to drain; Detach must discard the queue, close the
// channel, and leave no goroutine behind.
func TestSessionDetachAbandonedConsumer(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := laser.Attach(spinImage(300_000))
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Events() // registered, never drained: events pile up queued
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Detach(); err != nil {
		t.Fatal(err)
	}
	// The channel must close promptly even though nothing was consumed.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				waitGoroutines(t, base)
				return
			}
			// A straggler the pump had already committed to sending is
			// fine; keep draining until the close.
		case <-deadline:
			t.Fatal("Events channel still open after Detach")
		}
	}
}

// Detach must also release a stream that was first closed gracefully
// but whose consumer never drained it — the Close-then-reap sequence.
func TestSessionDetachAfterClose(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := laser.Attach(spinImage(300_000))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Events()
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // graceful: queue retained for a consumer
		t.Fatal(err)
	}
	if err := s.Detach(); err != nil { // reaper: consumer never came
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// An observer-only session (laserd's shape: events captured by callback,
// Events never called) must leave nothing behind after Close regardless
// of how it ended.
func TestSessionObserverOnlyNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	n := 0
	s, err := laser.Attach(spinImage(300_000),
		laser.WithObserver(func(laser.Event) { n++ }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("observer saw no events")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// Cancelling Run's context mid-run must return the context error with a
// partial result and leave no goroutine behind — the intra-run worker
// pool is joined at every RunFor slice boundary.
func TestSessionRunCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := laser.Attach(spinImage(5_000_000), laser.WithIntraRunParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Run(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run() after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run() did not return after cancellation")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}
