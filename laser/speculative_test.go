package laser_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/repair"
	"repro/internal/workload"
	"repro/laser"
)

// speculativeRun drives one linear_regression session with speculative
// repair on and returns the result plus the rendered event sequence.
func speculativeRun(t *testing.T, seed int64) (*laser.Result, []string) {
	t.Helper()
	w, ok := workload.Get("linear_regression")
	if !ok {
		t.Fatal("linear_regression not registered")
	}
	img := w.Build(workload.Options{Scale: 0.6})
	var events []string
	s, err := laser.Attach(img,
		laser.WithSpeculativeRepair(true),
		laser.WithSeed(seed),
		laser.WithObserver(func(e laser.Event) {
			events = append(events, fmt.Sprintf("%T|%v", e, e))
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// TestSpeculativeRepairDeterministic is the session-level determinism
// acceptance: two speculative-repair runs with the same seed must
// produce identical event sequences — trial forks run concurrently, but
// results are emitted post-race in canonical candidate order and the
// selector is pure, so nothing about goroutine interleaving may leak
// into what observers see.
func TestSpeculativeRepairDeterministic(t *testing.T) {
	resA, eventsA := speculativeRun(t, 1)
	resB, eventsB := speculativeRun(t, 1)
	if !reflect.DeepEqual(eventsA, eventsB) {
		max := len(eventsA)
		if len(eventsB) > max {
			max = len(eventsB)
		}
		for i := 0; i < max; i++ {
			a, b := "<none>", "<none>"
			if i < len(eventsA) {
				a = eventsA[i]
			}
			if i < len(eventsB) {
				b = eventsB[i]
			}
			if a != b {
				t.Fatalf("event %d diverged:\nrun A: %s\nrun B: %s", i, a, b)
			}
		}
		t.Fatalf("event counts diverged: %d vs %d", len(eventsA), len(eventsB))
	}
	if resA.RepairWinner != resB.RepairWinner {
		t.Errorf("winners diverged: %q vs %q", resA.RepairWinner, resB.RepairWinner)
	}
	if !reflect.DeepEqual(resA.RepairTrials, resB.RepairTrials) {
		t.Errorf("trial results diverged:\n%+v\n%+v", resA.RepairTrials, resB.RepairTrials)
	}
}

// TestSpeculativeRepairEventShape pins the trial event protocol on a
// workload whose trigger fires: one RepairTrialStarted announcing the
// full slate, four RepairTrialResult events in canonical candidate
// order with exactly one marked winner, and a RepairApplied (or
// RepairDeclined) naming that same candidate.
func TestSpeculativeRepairEventShape(t *testing.T) {
	w, _ := workload.Get("linear_regression")
	img := w.Build(workload.Options{Scale: 0.6})
	var started []laser.RepairTrialStarted
	var results []laser.RepairTrialResult
	var applied []laser.RepairApplied
	var declined []laser.RepairDeclined
	s, err := laser.Attach(img,
		laser.WithSpeculativeRepair(true),
		laser.WithObserver(func(e laser.Event) {
			switch ev := e.(type) {
			case laser.RepairTrialStarted:
				started = append(started, ev)
			case laser.RepairTrialResult:
				results = append(results, ev)
			case laser.RepairApplied:
				applied = append(applied, ev)
			case laser.RepairDeclined:
				declined = append(declined, ev)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}

	canonical := []string{}
	for _, c := range repair.Candidates() {
		canonical = append(canonical, c.Name())
	}
	if len(started) != 1 {
		t.Fatalf("RepairTrialStarted events = %d, want 1", len(started))
	}
	if !reflect.DeepEqual(started[0].Candidates, canonical) {
		t.Errorf("announced slate %v, want %v", started[0].Candidates, canonical)
	}
	if started[0].Budget == 0 {
		t.Error("trial budget not resolved")
	}
	var gotOrder []string
	winners := 0
	winner := ""
	for _, r := range results {
		gotOrder = append(gotOrder, r.Candidate)
		if r.Winner {
			winners++
			winner = r.Candidate
		}
	}
	if !reflect.DeepEqual(gotOrder, canonical) {
		t.Fatalf("trial results order %v, want canonical %v", gotOrder, canonical)
	}
	if winners != 1 {
		t.Fatalf("winner marks = %d, want exactly 1", winners)
	}
	if res.RepairWinner != winner {
		t.Errorf("Result.RepairWinner = %q, event winner = %q", res.RepairWinner, winner)
	}
	if len(res.RepairTrials) != len(canonical) {
		t.Errorf("Result.RepairTrials has %d entries, want %d", len(res.RepairTrials), len(canonical))
	}
	switch {
	case len(applied) == 1:
		if applied[0].Candidate != winner {
			t.Errorf("RepairApplied.Candidate = %q, want winner %q", applied[0].Candidate, winner)
		}
		if winner == repair.DeclineName {
			t.Error("applied a repair but the winner was the decline")
		}
	case len(declined) == 1:
		if declined[0].Winner != winner {
			t.Errorf("RepairDeclined.Winner = %q, want %q", declined[0].Winner, winner)
		}
	default:
		t.Fatalf("applied=%d declined=%d, want exactly one outcome event", len(applied), len(declined))
	}
}
