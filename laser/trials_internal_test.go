package laser

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/workload"
)

// trialFSImage builds a minimal two-thread image with one falsely shared
// line: each thread stores into its own slot of the line and loads from
// a private array, linear_regression-shaped. Small enough that trial
// forks complete within a modest budget.
func trialFSImage(iters int64) *workload.Image {
	b := isa.NewBuilder().At("trial.c", 100)
	b.Func("worker")
	b.Li(1, 0)
	b.Label("loop").Line(102)
	b.Load(2, 10, 0, 8) // private load
	b.Load(4, 0, 0, 8)  // contended load
	b.Add(4, 4, 2)
	b.Store(0, 0, 4, 8) // contended store (false sharing)
	b.Line(104).AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, iters, "loop")
	b.Line(106).Halt()
	prog := b.Build()

	line := mem.HeapBase + 0x1000
	specs := []machine.ThreadSpec{
		{Entry: 0, Regs: map[isa.Reg]int64{0: int64(line), 10: int64(line) + 1024}},
		{Entry: 0, Regs: map[isa.Reg]int64{0: int64(line) + 16, 10: int64(line) + 2048}},
	}
	return &workload.Image{Prog: prog, Specs: specs, Threads: 2}
}

// contendingStorePCs mimics the detector's candidate list: the PCs of
// the program's store instructions.
func contendingStorePCs(prog *isa.Program) []mem.Addr {
	var pcs []mem.Addr
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == isa.OpStore {
			pcs = append(pcs, prog.Instrs[i].PC)
		}
	}
	return pcs
}

// TestTrialForksIsolateParent is the fork-isolation aliasing audit as a
// test: a session that runs a full trial race mid-stream must remain
// byte-identical — snapshot for snapshot, step for step — to a twin
// session that never forked. Any mutable structure shared between the
// parent and a trial fork (or between forks, which run concurrently and
// so also put the race detector on duty) would diverge the snapshots.
func TestTrialForksIsolateParent(t *testing.T) {
	const iters = 30_000
	attach := func() *Session {
		s, err := Attach(trialFSImage(iters),
			WithRepair(false), // drive repair by hand below
			WithPollInterval(50_000),
			WithTrialBudget(150_000))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	subject, twin := attach(), attach()
	defer subject.Close()
	defer twin.Close()

	// Step both to the same mid-run cut.
	for _, s := range []*Session{subject, twin} {
		if done, err := s.RunFor(200_000); err != nil || done {
			t.Fatalf("RunFor: done=%t err=%v", done, err)
		}
	}
	before := encodeState(t, subject)
	if tw := encodeState(t, twin); !bytes.Equal(before, tw) {
		t.Fatal("subject and twin diverged before any trial ran")
	}

	// Race the full candidate slate on the subject only.
	trials, err := subject.runTrials(contendingStorePCs(subject.img.Prog))
	if err != nil {
		t.Fatalf("runTrials: %v", err)
	}
	if len(trials) != 4 {
		t.Fatalf("got %d trials, want 4", len(trials))
	}
	ran := 0
	for _, tr := range trials {
		if tr.Err == "" && tr.Cycles > 0 {
			ran++
		}
	}
	if ran < 2 {
		t.Fatalf("want at least two measured trials (a rewrite and the no-op), got %d: %+v", ran, trials)
	}

	// The race must not have moved the parent by a single byte.
	if after := encodeState(t, subject); !bytes.Equal(before, after) {
		t.Fatal("trial race mutated the parent session state")
	}

	// And the rest of the run must unfold exactly as the twin's.
	finish := func(s *Session) {
		for {
			done, err := s.Step()
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			if done {
				return
			}
		}
	}
	finish(subject)
	finish(twin)
	sres, err := subject.Result()
	if err != nil {
		t.Fatal(err)
	}
	tres, err := twin.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sres.Stats, tres.Stats) {
		t.Errorf("final stats diverged after trials:\nsubject: %+v\ntwin:    %+v", sres.Stats, tres.Stats)
	}
	if sf := encodeState(t, subject); !bytes.Equal(sf, encodeState(t, twin)) {
		t.Error("final session snapshots diverged after trials")
	}
}

func encodeState(t *testing.T, s *Session) []byte {
	t.Helper()
	blob, err := s.CaptureState().Encode()
	if err != nil {
		t.Fatalf("CaptureState.Encode: %v", err)
	}
	return blob
}
