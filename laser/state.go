package laser

// Durable session snapshots: SessionState composes the component
// snapshots (machine, detector pipeline, repair controller, PMU,
// driver) with the session's own monitor-loop state into one
// gob-serializable value. CaptureState is valid whenever the session is
// stopped at a Step boundary — the machine settles every in-flight
// engine segment before RunFor returns, so a boundary is a fully
// consistent cut. RestoreSession rebuilds the full stack from the
// workload image and overwrites it with the snapshot; restore is
// deterministically transparent: a restored session emits a
// byte-identical remaining event stream and final result versus a twin
// that was never interrupted.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pebs"
	"repro/internal/repair"
	"repro/internal/workload"
)

// SessionState is a whole-session snapshot. Fingerprint pins the
// configuration the snapshot was captured under: RestoreSession refuses
// a snapshot whose fingerprint does not match the configuration the
// restoring options produce, because a single divergent parameter would
// silently fork the simulation. Parallel additionally pins the
// execution engine — the intra-run engine's first-touch tables are not
// portable across engines, so a snapshot restores only onto the same
// engine kind it was captured on.
type SessionState struct {
	Fingerprint string
	Parallel    bool

	Machine *machine.State
	Pipe    *core.FullState
	Repair  *repair.State
	PEBS    *pebs.State
	Driver  *driver.State

	Next          uint64
	Done          bool
	Epoch         int
	EpochStart    float64
	EpochDrv      driver.Stats
	EpochPEBS     pebs.Stats
	Epochs        []EpochReport
	LastGen       int
	RepairApplied bool
	RepairErr     string
	TrialWinner   string
	Trials        []repair.TrialResult
	Covered       []mem.Addr // sorted
}

// cloneEpochs deep-copies archived epoch reports. Snapshots must not
// share *core.Report values with the live session — and trial forks
// restored from one snapshot must not share them with each other.
func cloneEpochs(eps []EpochReport) []EpochReport {
	if eps == nil {
		return nil
	}
	out := append([]EpochReport(nil), eps...)
	for i := range out {
		if r := out[i].Report; r != nil {
			cp := *r
			cp.Lines = append([]core.ReportLine(nil), r.Lines...)
			out[i].Report = &cp
		}
	}
	return out
}

// Fingerprint returns the fingerprint of the session's resolved
// configuration — the value a snapshot of this session would pin.
func (s *Session) Fingerprint() string { return s.cfg.Fingerprint() }

// CaptureState snapshots the session. Call it only from the driving
// goroutine, with the session stopped at a Step boundary.
func (s *Session) CaptureState() *SessionState {
	st := &SessionState{
		Fingerprint:   s.cfg.Fingerprint(),
		Parallel:      s.m.IntraRunParallel(),
		Machine:       s.m.CaptureState(),
		Pipe:          s.pipe.FullState(),
		Repair:        s.ctl.CaptureState(),
		PEBS:          s.pmu.CaptureState(),
		Driver:        s.drv.CaptureState(),
		Next:          s.next,
		Done:          s.done,
		Epoch:         s.epoch,
		EpochStart:    s.epochStart,
		EpochDrv:      s.epochDrv,
		EpochPEBS:     s.epochPEBS,
		Epochs:        cloneEpochs(s.epochs),
		LastGen:       s.lastGen,
		RepairApplied: s.repairApplied,
		TrialWinner:   s.trialWinner,
		Trials:        append([]repair.TrialResult(nil), s.trials...),
	}
	if s.repairErr != nil {
		st.RepairErr = s.repairErr.Error()
	}
	for pc := range s.covered {
		st.Covered = append(st.Covered, pc)
	}
	sort.Slice(st.Covered, func(i, j int) bool { return st.Covered[i] < st.Covered[j] })
	return st
}

// RestoreSession rebuilds a session from a snapshot. img and opts must
// describe the same workload image and configuration the captured
// session was attached with; the configuration is verified against the
// snapshot's fingerprint and the execution-engine kind against its
// Parallel flag (IntraRunParallelism may change worker count, but not
// flip between serial and intra-run engines). The restored session is
// stopped at the captured Step boundary; no events are re-emitted for
// the already-monitored prefix, so observers attached via opts see
// exactly the remaining stream.
func RestoreSession(img *workload.Image, st *SessionState, opts ...Option) (*Session, error) {
	set := settings{cfg: DefaultConfig(), monitorAfterRepair: true}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&set); err != nil {
			return nil, fmt.Errorf("laser: %w", err)
		}
	}
	if set.cfg.MaxEpochs == 0 {
		set.cfg.MaxEpochs = DefaultMaxEpochs
	}
	if err := resolvePollInterval(&set); err != nil {
		return nil, err
	}
	if err := set.cfg.Validate(); err != nil {
		return nil, err
	}
	if fp := set.cfg.Fingerprint(); fp != st.Fingerprint {
		return nil, fmt.Errorf("laser: snapshot fingerprint %s does not match configuration fingerprint %s", st.Fingerprint, fp)
	}
	s, err := newSession(img, set)
	if err != nil {
		return nil, err
	}
	if s.m.IntraRunParallel() != st.Parallel {
		return nil, fmt.Errorf("laser: snapshot captured with intra-run parallel=%v, restore configured parallel=%v",
			st.Parallel, s.m.IntraRunParallel())
	}
	if err := s.restoreFrom(st); err != nil {
		return nil, err
	}
	return s, nil
}

// restoreFrom overwrites a freshly built session with a snapshot's
// component state. It is the shared core of RestoreSession and the
// speculative-repair trial forks (which skip the public entry point's
// fingerprint check: a fork reuses the parent's resolved configuration
// verbatim).
func (s *Session) restoreFrom(st *SessionState) error {
	// Order matters: the controller reinstalls the rewritten program
	// first (its SetProgram remaps the fresh machine's thread state, which
	// the machine snapshot then overwrites), the machine restore brings
	// back the true architectural state, and the pipeline's PC remap is
	// derived from the restored controller afterwards.
	if err := s.ctl.RestoreState(st.Repair); err != nil {
		return err
	}
	if err := s.m.RestoreState(st.Machine); err != nil {
		return err
	}
	if err := s.pipe.RestoreFullState(st.Pipe); err != nil {
		return err
	}
	// The remap table the captured pipeline held is the one installed at
	// controller generation LastGen. At a Step boundary that is the
	// current generation on every path that still feeds the pipeline; a
	// frozen (one-shot) pipeline can hold a stale generation, but it
	// never consumes another record, so nil is equivalent there.
	if st.LastGen == s.ctl.Generation() {
		s.pipe.SetPCRemap(s.ctl.PCRemap())
	} else {
		s.pipe.SetPCRemap(nil)
	}
	if err := s.pmu.RestoreState(st.PEBS); err != nil {
		return err
	}
	s.drv.RestoreState(st.Driver)

	s.next = st.Next
	s.done = st.Done
	s.epoch = st.Epoch
	s.epochStart = st.EpochStart
	s.epochDrv = st.EpochDrv
	s.epochPEBS = st.EpochPEBS
	s.epochs = cloneEpochs(st.Epochs)
	s.lastGen = st.LastGen
	s.repairApplied = st.RepairApplied
	if st.RepairErr != "" {
		s.repairErr = errors.New(st.RepairErr)
	}
	s.trialWinner = st.TrialWinner
	s.trials = append([]repair.TrialResult(nil), st.Trials...)
	if len(st.Covered) > 0 {
		s.covered = make(map[mem.Addr]bool, len(st.Covered))
		for _, pc := range st.Covered {
			s.covered[pc] = true
		}
	}
	if s.done {
		// The captured session had already finished (and archived its
		// final epoch); rebuild the Result from the restored components
		// without re-running finish's drain/emit side effects.
		seconds := s.m.Stats().Seconds()
		s.res = &Result{
			Stats:         s.m.Stats(),
			Report:        s.pipe.Report(seconds),
			Pipeline:      s.pipe,
			RepairApplied: s.repairApplied,
			RepairErr:     s.repairErr,
			RepairWinner:  s.trialWinner,
			RepairTrials:  s.trials,
			Seconds:       seconds,
			DriverStats:   s.drv.Stats(),
			PEBSStats:     s.pmu.Stats(),
			DetectorCycle: s.pipe.DetectorCycles(),
			Epochs:        s.epochs,
		}
	}
	return nil
}

// Encode serializes the snapshot with gob. The encoding is
// deterministic for a given snapshot: every component flattens its
// maps into sorted slices at capture time.
func (st *SessionState) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("laser: encoding session state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSessionState parses a snapshot produced by Encode.
func DecodeSessionState(b []byte) (*SessionState, error) {
	st := new(SessionState)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(st); err != nil {
		return nil, fmt.Errorf("laser: decoding session state: %w", err)
	}
	return st, nil
}
