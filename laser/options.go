package laser

import "fmt"

// settings is everything Attach needs: the component configuration plus
// session-only knobs that have no legacy Config field.
type settings struct {
	cfg Config
	// monitorAfterRepair keeps feeding the detector after a repair in
	// the final epoch (remapped to original PCs). The legacy one-shot
	// wrappers run with it off — they freeze monitoring at the first
	// repair, as the paper's exit report does.
	monitorAfterRepair bool
	observers          []func(Event)
	// pollSource records where the cadence came from, which decides what
	// Attach may derive on top of it (see resolvePollInterval).
	pollSource pollSource
	// autoPollScale > 0 asks Attach to derive the cadence from the
	// workload scale (WithAutoPollInterval).
	autoPollScale float64
}

// pollSource says how the session's poll cadence was configured.
type pollSource uint8

const (
	// pollDefault: nobody chose a cadence; Attach may derive one for
	// bounded runs.
	pollDefault pollSource = iota
	// pollFromConfig: WithConfig carried a non-zero PollInterval — used
	// as given, and as the base for WithAutoPollInterval's scaling.
	pollFromConfig
	// pollExplicit: WithPollInterval named an exact cadence; nothing is
	// derived on top, and WithAutoPollInterval conflicts.
	pollExplicit
)

// Option customizes a Session at Attach time. Options validate their
// arguments: Attach reports the first invalid one instead of silently
// coercing it, unlike the legacy Config path.
type Option func(*settings) error

// WithConfig replaces the whole component configuration, for callers
// migrating from the legacy Config struct. Later options apply on top.
// A non-zero PollInterval is used as given (and as the base cadence
// for WithAutoPollInterval); a zero one takes the default cadence and
// remains eligible for Attach's bounded-run derivation.
func WithConfig(cfg Config) Option {
	return func(s *settings) error {
		s.cfg = cfg
		if cfg.PollInterval != 0 {
			s.pollSource = pollFromConfig
		} else {
			s.pollSource = pollDefault
		}
		return nil
	}
}

// WithCores sets the simulated core count.
func WithCores(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("WithCores: core count must be positive, got %d", n)
		}
		s.cfg.Cores = n
		return nil
	}
}

// WithRepair enables or disables LASERREPAIR.
func WithRepair(enabled bool) Option {
	return func(s *settings) error {
		s.cfg.EnableRepair = enabled
		return nil
	}
}

// WithPollInterval sets the simulated-cycle slice between detector polls
// of the driver device. The value is used exactly as given: neither the
// scale-aware derivation (WithAutoPollInterval) nor the bounded-run
// default of Attach applies on top of it.
func WithPollInterval(cycles uint64) Option {
	return func(s *settings) error {
		if cycles == 0 {
			return fmt.Errorf("WithPollInterval: interval must be positive")
		}
		s.cfg.PollInterval = cycles
		s.pollSource = pollExplicit
		return nil
	}
}

// WithSAV sets the PEBS sample-after value on both the sampling hardware
// and the detector's rate scaling (the two must agree for event-rate
// estimates to be meaningful).
func WithSAV(sav int) Option {
	return func(s *settings) error {
		if sav <= 0 {
			return fmt.Errorf("WithSAV: sample-after value must be positive, got %d", sav)
		}
		s.cfg.PEBS.SAV = sav
		s.cfg.Detector.SAV = sav
		return nil
	}
}

// WithSeed seeds the PEBS imprecision model. Equal seeds (with equal
// images and options) produce identical runs, event for event.
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.cfg.PEBS.Seed = seed
		return nil
	}
}

// WithRateThreshold sets the report rate threshold in HITM events per
// second. Zero reports every line; the paper settles on 1K.
func WithRateThreshold(hitmsPerSec float64) Option {
	return func(s *settings) error {
		if hitmsPerSec < 0 {
			return fmt.Errorf("WithRateThreshold: threshold must be non-negative, got %g", hitmsPerSec)
		}
		s.cfg.Detector.RateThreshold = hitmsPerSec
		return nil
	}
}

// WithRepairRateThreshold sets the false-sharing event rate above which
// LASERREPAIR is invoked (§4.4).
func WithRepairRateThreshold(fsPerSec float64) Option {
	return func(s *settings) error {
		if fsPerSec <= 0 {
			return fmt.Errorf("WithRepairRateThreshold: threshold must be positive, got %g", fsPerSec)
		}
		s.cfg.Detector.RepairRateThreshold = fsPerSec
		return nil
	}
}

// WithMaxCycles caps the simulated run.
func WithMaxCycles(n uint64) Option {
	return func(s *settings) error {
		s.cfg.MaxCycles = n
		return nil
	}
}

// WithIntraRunParallelism runs the simulated machine on up to n host
// worker threads: thread-private instruction stretches execute
// concurrently while every globally-visible event (coherence traffic,
// HITMs, SSB flushes, probe activity) retires serially in the exact
// serial-schedule order. Results — statistics, reports, the event stream
// — are byte-identical at any n; only wall-clock time changes. 1 (or 0)
// selects the serial engine.
func WithIntraRunParallelism(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("WithIntraRunParallelism: worker count must be non-negative, got %d", n)
		}
		s.cfg.IntraRunParallelism = n
		return nil
	}
}

// WithSegmentJIT compiles the simulated machine's provably-private
// instruction segments — maximal straight-line runs the sharing
// analysis clears of cross-thread visibility — into specialized
// straight-line closures, with 1/2/4/8-byte load/store fast paths and
// register operations inlined. Every globally-visible event (coherence
// traffic, HITMs, probe activity, SSB transactions, halts) still
// retires through the interpreter in the exact serial order, so
// results — statistics, reports, the event stream — are byte-identical
// to the interpreter; only wall-clock time changes.
func WithSegmentJIT(on bool) Option {
	return func(s *settings) error {
		s.cfg.SegmentJIT = on
		return nil
	}
}

// WithMaxEpochs bounds how many detect→repair epochs the session may run.
// 1 recovers the paper's one-shot behaviour (a single repair, then the
// pipeline keeps observing but never re-triggers); Attach's default is
// DefaultMaxEpochs.
func WithMaxEpochs(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("WithMaxEpochs: need at least one epoch, got %d", n)
		}
		s.cfg.MaxEpochs = n
		return nil
	}
}

// WithPostRepairMonitoring controls whether the detector keeps consuming
// records once the last permitted repair is installed. Sessions default
// to true: post-repair records are remapped to original PCs and keep the
// report live. The legacy Run/RunImage wrappers run with false,
// reproducing the one-shot system's frozen-at-repair exit report.
func WithPostRepairMonitoring(enabled bool) Option {
	return func(s *settings) error {
		s.monitorAfterRepair = enabled
		return nil
	}
}

// WithSpeculativeRepair enables racing repair candidates when the §4.4
// trigger first fires: the session forks itself from the trigger cut,
// runs one bounded trial per candidate against a no-op baseline, and
// applies the measured winner (emitting RepairTrialStarted /
// RepairTrialResult along the way) — or declines with measured numbers.
// Disabled, repair installs the default SSB rewrite directly; the off
// path costs nothing.
func WithSpeculativeRepair(enabled bool) Option {
	return func(s *settings) error {
		s.cfg.SpeculativeRepair = enabled
		return nil
	}
}

// WithTrialBudget sets the simulated-cycle budget each speculative
// repair trial may run before it is scored as incomplete. The default
// (zero) derives four poll intervals at trial time.
func WithTrialBudget(cycles uint64) Option {
	return func(s *settings) error {
		if cycles == 0 {
			return fmt.Errorf("WithTrialBudget: budget must be positive")
		}
		s.cfg.TrialBudget = cycles
		return nil
	}
}

// WithObserver registers a callback invoked synchronously for every
// session event, in emission order. Use Events for a channel instead.
func WithObserver(fn func(Event)) Option {
	return func(s *settings) error {
		if fn == nil {
			return fmt.Errorf("WithObserver: observer must not be nil")
		}
		s.observers = append(s.observers, fn)
		return nil
	}
}
