// Package repro is a from-scratch Go reproduction of the LASER system
// ("LASER: Light, Accurate Sharing dEtection and Repair", HPCA 2016).
//
// LASER detects cache contention — both true sharing and false sharing —
// using hardware HITM coherence-event records, and repairs false sharing
// online with a software store buffer injected by binary rewriting.
//
// Because the paper depends on Haswell PEBS hardware and Pin-style native
// binary rewriting, this module reproduces the system on a simulated
// substrate: a synthetic ISA, a MESI multicore machine, a PEBS model with
// the paper's measured imprecision, a kernel-driver model, the full
// LASERDETECT/LASERREPAIR pipelines, VTune- and Sheriff-like baselines, and
// the Phoenix/Parsec/Splash2x workloads as synthetic programs.
//
// The public API is package laser's Session: laser.Attach wires the
// paper's Figure 8 three-process architecture around a workload image
// and hands back a long-lived, observable monitor — functional options
// configure it, Step/RunFor/Run/Wait drive it (context-aware), Snapshot
// reports at any moment, Events streams typed monitoring events, and
// detection runs multiple detect→repair epochs by remapping
// post-rewrite PCs back to the original program. laser.Run and friends
// remain as one-shot convenience wrappers over a pinned session.
//
// Start with package laser, DESIGN.md (system inventory and the Session
// architecture) and EXPERIMENTS.md (paper-versus-measured results). The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.
//
// # Performance
//
// The simulated machine is tuned for interpreter throughput: the
// coherence directory and the HITM-by-PC ground truth are flat
// open-addressed tables, backing memory is a two-level page index behind
// a two-entry page cache, and the scheduler retires batches of
// instructions per core (running ahead through provably thread-local
// instructions) while reproducing the serial lowest-clock-first schedule
// bit for bit. BenchmarkMachineStep, BenchmarkCoherenceAccess and
// BenchmarkMemoryLoadStore (in internal/machine and internal/coherence)
// measure the per-instruction, per-directory-access and per-load/store
// hot paths; the load/store path and the Session's streaming Step both
// run at 0 allocs/op.
//
// A single simulated machine can also execute on several host threads:
// the intra-run parallel engine (machine.Config.Parallelism,
// laser.WithIntraRunParallelism) runs each core's thread-private
// instruction stretches concurrently — guided by a static per-(thread,
// PC) sharing analysis in internal/isa plus the workloads' declared
// thread-private allocations — and retires every globally-visible event
// serially in the exact serial-schedule order, so results are
// byte-identical to the serial engine at any worker count. See
// DESIGN.md, "The two execution engines".
//
// On top of either engine, the segment compiler (machine.Config.SegmentJIT,
// laser.WithSegmentJIT) translates maximal provably-private instruction
// segments into straight-line Go closures with pre-decoded operands and
// inlined load/store fast paths, falling back to the interpreter at
// every globally-visible boundary and invalidating wholesale on program
// hot-swap — again with byte-identical results, with coverage reported
// in machine.Stats.CompiledInstrs. See DESIGN.md, "The segment
// compiler".
//
// The experiment harness in internal/experiments is a registry of
// declarative experiment specs: each figure enumerates its cacheable
// simulations as cost-estimated work units and assembles its artifacts
// from a persistent content-addressed run cache (internal/runcache),
// while a single executor fans the units out across all host cores,
// deduplicates them across experiments, and can partition them into a
// cost-balanced shard matrix (see DESIGN.md, "The experiment
// registry"). When a phase has fewer runnable simulations than host
// workers, the leftover workers move inside each machine via the
// intra-run engine.
// LASER_BENCH_PARALLEL selects the pool worker count (default
// GOMAXPROCS; 1 recovers the serial harness) and LASER_BENCH_INTRA
// overrides the intra-run split; results are assembled in index order,
// so every rendered table and figure is byte-identical at any
// parallelism on either axis. LASER_BENCH_ASCALE, LASER_BENCH_PSCALE
// and LASER_BENCH_RUNS scale the benchmark suite in bench_test.go.
package repro
