// Package repro is a from-scratch Go reproduction of the LASER system
// ("LASER: Light, Accurate Sharing dEtection and Repair", HPCA 2016).
//
// LASER detects cache contention — both true sharing and false sharing —
// using hardware HITM coherence-event records, and repairs false sharing
// online with a software store buffer injected by binary rewriting.
//
// Because the paper depends on Haswell PEBS hardware and Pin-style native
// binary rewriting, this module reproduces the system on a simulated
// substrate: a synthetic ISA, a MESI multicore machine, a PEBS model with
// the paper's measured imprecision, a kernel-driver model, the full
// LASERDETECT/LASERREPAIR pipelines, VTune- and Sheriff-like baselines, and
// the Phoenix/Parsec/Splash2x workloads as synthetic programs.
//
// Start with package laser (the public API), DESIGN.md (system inventory)
// and EXPERIMENTS.md (paper-versus-measured results). The benchmarks in
// bench_test.go regenerate every table and figure of the paper's evaluation.
package repro
