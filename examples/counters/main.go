// Counters: use the HITM record stream directly, the way §1 suggests —
// as "an efficient underpinning for identifying inter-thread communication
// patterns". This example builds a custom two-phase program with the
// public ISA builder, runs it under the PEBS+driver stack without the
// detector, and prints the raw communication profile.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/driver"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pebs"
)

func main() {
	// A little pipeline: thread 0 produces into a shared slot; thread 1
	// consumes and accumulates into a second shared slot read by thread 2.
	b := isa.NewBuilder().At("pipeline.c", 10)
	b.Func("stage0")
	b.Li(1, 0)
	b.Label("s0").Line(12)
	b.Load(2, 0, 0, 8)
	b.AddI(2, 2, 1)
	b.Store(0, 0, 2, 8)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, 30_000, "s0")
	b.Halt()
	b.Func("stage1")
	b.Li(1, 0)
	b.Label("s1").Line(22)
	b.Load(2, 0, 0, 8)
	b.Load(3, 4, 0, 8)
	b.Alu(isa.Add, 3, 3, 2)
	b.Store(4, 0, 3, 8)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, 30_000, "s1")
	b.Halt()
	prog := b.Build()

	slotA, slotB := mem.HeapBase, mem.HeapBase+4096
	specs := []machine.ThreadSpec{
		{Entry: 0, Regs: map[isa.Reg]int64{0: int64(slotA)}},
		{Entry: prog.Funcs[1].Start, Regs: map[isa.Reg]int64{0: int64(slotA), 4: int64(slotB)}},
	}

	vm := mem.StandardMap(prog.AppTextSize(), prog.LibTextSize(), 1<<20, 2)
	drv := driver.New(driver.DefaultConfig())
	pcfg := pebs.DefaultConfig()
	pcfg.SAV = 7
	pmu := pebs.New(pcfg, 4, prog, vm, drv)

	m := machine.New(prog, machine.Config{Cores: 4, Probe: pmu}, specs)
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	pmu.Drain()

	byLine := map[isa.SourceLoc]int{}
	for _, r := range drv.Poll() {
		if idx, ok := prog.IndexOf(r.PC); ok {
			byLine[prog.LocOf(idx)]++
		}
	}
	type e struct {
		loc isa.SourceLoc
		n   int
	}
	var out []e
	for l, n := range byLine {
		out = append(out, e{l, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].n > out[j].n })
	fmt.Println("inter-thread communication profile (HITM records by source line):")
	for _, x := range out {
		fmt.Printf("  %-16s %6d records\n", x.loc, x.n)
	}
	fmt.Println("\nlines 12↔22 exchange data through slot A — the pipeline handoff is visible")
	fmt.Println("directly in the coherence traffic, without any instrumentation.")
}
