// Counters: use the HITM record stream the way §1 suggests — as "an
// efficient underpinning for identifying inter-thread communication
// patterns". This example builds a custom two-phase program with the
// public ISA builder, wraps it in a workload image, and attaches a
// monitoring session with the report threshold dropped to zero: the
// detector then acts as a pure communication profiler, charting which
// source lines exchange cache lines, without any instrumentation of the
// program itself.
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/workload"
	"repro/laser"
)

func main() {
	// A little pipeline: thread 0 produces into a shared slot; thread 1
	// consumes and accumulates into a second shared slot.
	b := isa.NewBuilder().At("pipeline.c", 10)
	b.Func("stage0")
	b.Li(1, 0)
	b.Label("s0").Line(12)
	b.Load(2, 0, 0, 8)
	b.AddI(2, 2, 1)
	b.Store(0, 0, 2, 8)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, 30_000, "s0")
	b.Halt()
	b.Func("stage1")
	b.Li(1, 0)
	b.Label("s1").Line(22)
	b.Load(2, 0, 0, 8)
	b.Load(3, 4, 0, 8)
	b.Alu(isa.Add, 3, 3, 2)
	b.Store(4, 0, 3, 8)
	b.AddI(1, 1, 1)
	b.BranchI(isa.Lt, 1, 30_000, "s1")
	b.Halt()
	prog := b.Build()

	slotA, slotB := mem.HeapBase, mem.HeapBase+4096
	img := &workload.Image{
		Prog: prog,
		Specs: []machine.ThreadSpec{
			{Entry: 0, Regs: map[isa.Reg]int64{0: int64(slotA)}},
			{Entry: prog.Funcs[1].Start, Regs: map[isa.Reg]int64{0: int64(slotA), 4: int64(slotB)}},
		},
		Threads: 2,
	}

	// Sessions attach to any image, not just the paper's workloads. SAV 7
	// samples densely; threshold 0 reports every line with HITM traffic.
	batches := 0
	s, err := laser.Attach(img,
		laser.WithSAV(7),
		laser.WithRateThreshold(0),
		laser.WithRepair(false),
		laser.WithObserver(func(e laser.Event) {
			if _, isBatch := e.(laser.SampleBatch); isBatch {
				batches++
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	res, err := s.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("inter-thread communication profile (%d record batches observed):\n", batches)
	for _, l := range res.Report.Lines {
		fmt.Printf("  %-16s %8.0f HITM/s  (TS=%d FS=%d)\n", l.Loc, l.Rate, l.TS, l.FS)
	}
	fmt.Println("\nlines 12↔22 exchange data through slot A — the pipeline handoff is visible")
	fmt.Println("directly in the coherence traffic, without any instrumentation.")
}
