// Repair internals: run LASERREPAIR's static analysis and rewriting by
// hand on histogram' and inspect what it does — which instructions move
// to the software store buffer, which loads are speculatively exempted,
// and where the flush lands (§5.3, Figure 7).
package main

import (
	"fmt"
	"log"

	"repro/internal/machine"
	"repro/internal/repair"
	"repro/internal/workload"
	"repro/laser"
)

func main() {
	w, _ := workload.Get("histogram'")
	img := w.Build(workload.Options{})

	// Detect first: which PCs contend? A detection-only session leaves
	// LASERREPAIR out of the loop but keeps the pipeline for offline
	// interrogation.
	s, err := laser.Attach(img, laser.WithRepair(false))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	res, err := s.Wait()
	if err != nil {
		log.Fatal(err)
	}
	pcs, ok := res.Pipeline.RepairCandidates(res.Seconds)
	if !ok {
		log.Fatal("false sharing not intense enough to trigger repair")
	}
	fmt.Printf("LASERDETECT handed over %d contending PCs\n\n", len(pcs))

	// Analyze: the §5.3 static analysis.
	img2 := w.Build(workload.Options{})
	plan, err := repair.Analyze(repair.DefaultConfig(), img2.Prog, pcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan for %s: %d instrumented ops, %d alias-exempt loads, "+
		"%d flush sites, est. %.0f stores/flush\n\n",
		plan.Fn.Name, len(plan.Instrument), len(plan.AliasExempt),
		len(plan.FlushBefore), plan.EstStoresPerFlush)

	inst, _, _ := repair.Rewrite(img2.Prog, plan)
	fmt.Println("rewritten hot loop (ssb.* ops are the software store buffer):")
	for i := range inst.Instrs {
		in := &inst.Instrs[i]
		if in.File == "histogram.c" && in.Line >= 58 && in.Line <= 70 {
			fmt.Printf("  %-26s ; %s:%d\n", in.String(), in.File, in.Line)
		}
	}

	// Run the rewritten program and compare.
	m1 := machine.New(img2.Prog, machine.Config{Cores: 4}, img2.Specs)
	img2.Init(m1)
	st1, err := m1.Run()
	if err != nil {
		log.Fatal(err)
	}
	img3 := w.Build(workload.Options{})
	m2 := machine.New(inst, machine.Config{Cores: 4}, img3.Specs)
	img3.Init(m2)
	st2, err := m2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnative:   %12d cycles, %8d HITMs\n", st1.Cycles, st1.HITMs())
	fmt.Printf("repaired: %12d cycles, %8d HITMs (%d SSB flushes, %d aborts)\n",
		st2.Cycles, st2.HITMs(), st2.Flushes, st2.FlushAborts)
	fmt.Printf("speedup:  %.2fx with TSO preserved (flushes are HTM-atomic)\n",
		float64(st1.Cycles)/float64(st2.Cycles))
}
