// True-sharing triage: kmeans does not falsely share anything, so tools
// that only look for false sharing find it unremarkable (§7.4.2). LASER
// classifies its contention as true sharing — worker threads hammering
// shared sum objects — and correctly refuses to attempt automatic repair,
// which can only help false sharing.
//
// This version drives the session by hand: it advances the monitor in
// slices, takes a mid-run snapshot (the detector's aggregates are
// available at any moment, not only at exit), and uses an observer to
// prove the repair trigger never fires.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/laser"
)

func main() {
	w, ok := workload.Get("kmeans")
	if !ok {
		log.Fatal("workload not found")
	}
	img := w.Build(workload.Options{Scale: 0.5, HeapBias: laser.AttachBias})

	triggers := 0
	s, err := laser.Attach(img, laser.WithObserver(func(e laser.Event) {
		if _, isTrigger := e.(laser.RepairTriggered); isTrigger {
			triggers++
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Let the workload run for a while, then peek at the live report.
	if _, err := s.RunFor(40_000_000); err != nil {
		log.Fatal(err)
	}
	snap := s.Snapshot()
	fmt.Printf("mid-run snapshot at %.2f ms: %d lines above threshold\n\n",
		snap.Seconds*1e3, len(snap.Lines))

	res, err := s.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report.Render())
	fmt.Println()

	for _, l := range res.Report.Lines {
		if l.Kind == core.TrueSharing && l.Loc.File == "kmeans.c" {
			fmt.Printf("%s is TRUE sharing: padding cannot fix it; the paper's fix\n", l.Loc)
			fmt.Println("allocates the sum objects on each worker's stack instead.")
			break
		}
	}
	if res.RepairApplied || triggers > 0 {
		log.Fatal("unexpected: repair must not trigger on true sharing")
	}
	fmt.Println("\nLASERREPAIR correctly stayed out of the way (repair fixes false sharing only;")
	fmt.Println("the session observer saw zero RepairTriggered events).")

	// The manual fix from §7.4.2: per-thread stack allocation.
	nat, err := laser.RunNative(w.Build(workload.Options{Scale: 0.5}), 4)
	if err != nil {
		log.Fatal(err)
	}
	fix, err := laser.RunNative(w.Build(workload.Options{Scale: 0.5, Variant: workload.Fixed}), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstack-allocating the sums: %d → %d HITMs, %.2fx speedup\n",
		nat.HITMs(), fix.HITMs(), float64(nat.Cycles)/float64(fix.Cycles))
}
