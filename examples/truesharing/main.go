// True-sharing triage: kmeans does not falsely share anything, so tools
// that only look for false sharing find it unremarkable (§7.4.2). LASER
// classifies its contention as true sharing — worker threads hammering
// shared sum objects — and correctly refuses to attempt automatic repair,
// which can only help false sharing.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/laser"
)

func main() {
	res, err := laser.RunByName("kmeans", workload.Options{Scale: 0.5}, laser.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report.Render())
	fmt.Println()

	for _, l := range res.Report.Lines {
		if l.Kind == core.TrueSharing && l.Loc.File == "kmeans.c" {
			fmt.Printf("%s is TRUE sharing: padding cannot fix it; the paper's fix\n", l.Loc)
			fmt.Println("allocates the sum objects on each worker's stack instead.")
			break
		}
	}
	if res.RepairApplied {
		log.Fatal("unexpected: repair must not trigger on true sharing")
	}
	fmt.Println("\nLASERREPAIR correctly stayed out of the way (repair fixes false sharing only).")

	// The manual fix from §7.4.2: per-thread stack allocation.
	w, _ := workload.Get("kmeans")
	nat, err := laser.RunNative(w.Build(workload.Options{Scale: 0.5}), 4)
	if err != nil {
		log.Fatal(err)
	}
	fix, err := laser.RunNative(w.Build(workload.Options{Scale: 0.5, Variant: workload.Fixed}), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstack-allocating the sums: %d → %d HITMs, %.2fx speedup\n",
		nat.HITMs(), fix.HITMs(), float64(nat.Cycles)/float64(fix.Cycles))
}
