// Quickstart: attach a LASER monitoring session to the paper's headline
// workload — linear_regression, whose lreg_args array falsely shares
// cache lines (Figure 2) — and watch detection plus automatic online
// repair happen, live, on the session's event stream.
package main

import (
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/laser"
)

func main() {
	w, ok := workload.Get("linear_regression")
	if !ok {
		log.Fatal("workload not found")
	}

	// First: the program on its own.
	native, err := laser.RunNative(w.Build(workload.Options{}), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native run: %.2f ms simulated, %d HITM coherence events\n",
		native.Seconds()*1e3, native.HITMs())

	// Then: the same program under a LASER session. The heap bias is the
	// attach-time perturbation laser.Run applies; events stream while the
	// monitor works.
	img := w.Build(workload.Options{HeapBias: laser.AttachBias})
	s, err := laser.Attach(img)
	if err != nil {
		log.Fatal(err)
	}
	events := s.Events()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for e := range events {
			switch e.(type) {
			case laser.RepairTriggered, laser.RepairApplied, laser.EpochEnd:
				fmt.Println(" ", e)
			}
		}
	}()
	res, err := s.Wait()
	if err != nil {
		log.Fatal(err)
	}
	s.Close()
	<-drained

	fmt.Printf("under LASER: %.2f ms simulated (%.2fx of native)\n",
		res.Seconds*1e3, float64(res.Stats.Cycles)/float64(native.Cycles))
	if res.RepairApplied {
		fmt.Println("LASERREPAIR rewrote the contending loop to use the software store buffer —")
		fmt.Println("the run finished FASTER than native despite full monitoring.")
	}
	fmt.Println()
	fmt.Print(res.Report.Render())
	fmt.Println("\nThe padding fix (manual) for comparison:")
	fixed, err := laser.RunNative(w.Build(workload.Options{Variant: workload.Fixed}), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed run: %.2f ms — a %.1fx speedup over the buggy build\n",
		fixed.Seconds()*1e3, float64(native.Cycles)/float64(fixed.Cycles))
}
