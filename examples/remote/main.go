// Remote monitoring over HTTP: attach a session on a running laserd,
// follow its typed event stream over SSE, and re-threshold the live
// detection report mid-run (the Figure 9 interrogation) — all with
// nothing but net/http. Start the daemon first:
//
//	go run ./cmd/laserd
//
// then:
//
//	go run ./examples/remote [-url http://127.0.0.1:8347]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8347", "laserd base URL")
	flag.Parse()

	// Attach the paper's falsely-sharing histogram at a small scale. The
	// attach body carries the same functional-option surface laser.Attach
	// takes in-process; the server validates it identically.
	body := `{
		"workload": "histogram'",
		"scale": 0.1,
		"options": {"seed": 42, "sav": 19, "rate_threshold": 0}
	}`
	var sess struct {
		ID string `json:"id"`
	}
	post(*url+"/sessions", body, &sess)
	fmt.Printf("attached %s\n", sess.ID)
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, *url+"/sessions/"+sess.ID, nil)
		http.DefaultClient.Do(req)
	}()

	post(*url+"/sessions/"+sess.ID+"/run", "", nil)

	// Follow the SSE stream. Frames are "id:", "event:", "data:" lines
	// ending in a blank line; the terminal frame's event type is "eof".
	resp, err := http.Get(*url + "/sessions/" + sess.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	var id, event string
	frames := 0
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			log.Fatalf("stream ended without eof frame: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			id = line[4:]
		case strings.HasPrefix(line, "event: "):
			event = line[7:]
		case line == "":
			fmt.Printf("  event %s: %s\n", id, event)
			frames++
			// After a few frames, interrogate the live run: the same
			// cumulative HITM samples re-scored at two thresholds,
			// without touching the session's own configuration.
			if frames == 3 {
				for _, th := range []string{"0", "1000"} {
					var rep struct {
						Cycles uint64 `json:"cycles"`
						Report struct {
							Lines []json.RawMessage `json:"lines"`
						} `json:"report"`
					}
					get(*url+"/sessions/"+sess.ID+"/report?threshold="+th, &rep)
					fmt.Printf("  mid-run re-threshold @%s HITMs/s: %d report lines at cycle %d\n",
						th, len(rep.Report.Lines), rep.Cycles)
				}
			}
		}
		if event == "eof" && frames > 0 && line == "" {
			break
		}
	}

	// The completed session's result: final report and repair outcome.
	var result struct {
		Seconds       float64 `json:"seconds"`
		RepairApplied bool    `json:"repair_applied"`
		Report        struct {
			Lines []struct {
				Loc  string  `json:"loc"`
				Rate float64 `json:"rate"`
				Kind string  `json:"kind"`
			} `json:"lines"`
		} `json:"report"`
	}
	get(*url+"/sessions/"+sess.ID+"/result", &result)
	fmt.Printf("done in %.4f simulated seconds, repair applied: %v\n", result.Seconds, result.RepairApplied)
	for _, l := range result.Report.Lines {
		if l.Rate > 0 {
			fmt.Printf("  %-24s %10.0f HITMs/s  %s\n", l.Loc, l.Rate, l.Kind)
		}
	}
}

func post(url, body string, out any) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			log.Fatalf("POST %s: %v", url, err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}
